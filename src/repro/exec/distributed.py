"""The distributed executor: a campaign fanned out over HTTP workers.

The coordinator (this process) submits every grid cell to a
:class:`~repro.exec.board.LeaseBoard` and then *observes*: remote
workers pull leases over HTTP (see :mod:`repro.exec.worker`), simulate,
and post results back; crashed workers are absorbed by lease expiry and
the cells re-queue for whoever is still alive.  The executor never
pushes work — idle workers steal it.

Two properties make the output indistinguishable from a serial run:

* **determinism** — every cell's result is a pure function of its
  scenario, so *which* worker ran it (and how many attempts it took)
  cannot change a byte of the result;
* **write-behind settled-prefix flush** — results settle on the board
  in whatever order workers finish, but a background flusher thread
  applies ``store.append`` / ``manifest.record_done`` / ``progress``
  strictly in grid order as the completed prefix grows.  The flush is
  asynchronous (the observe loop never blocks on store I/O) yet the
  on-disk order is exactly the serial one.

Cells are submitted by pairing key, so two campaigns sharing a board
dedup at lease time: a cell both need is simulated once and both
campaigns' flushers write the settled result (each from its own
:class:`RunResult` copy — provenance stamps don't bleed across).

With no ``board`` argument the executor **self-hosts**: it starts a
:class:`~repro.exec.coordinator.CoordinatorServer` on ``spec.bind`` and
optionally spawns ``spec.local_workers`` worker subprocesses — which is
how ``repro-caem run --executor distributed:local=2`` works with no
other process involved.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from typing import Any, List, Optional, Sequence, Tuple

from .base import CampaignExecutor, CellFailure, ExecutionHooks
from .board import DONE, QUARANTINED, LeaseBoard
from .spec import ExecutorSpec
from .wire import result_from_wire, scenario_to_wire

__all__ = ["DistributedExecutor"]


class DistributedExecutor(CampaignExecutor):
    """Observe a lease board until every submitted cell settles."""

    kind = "distributed"

    def __init__(self, spec: ExecutorSpec, board: Optional[LeaseBoard] = None):
        self.spec = spec
        self.board = board
        self._owns_board = board is None
        self._server = None
        self._local_procs: List[subprocess.Popen] = []
        if self._owns_board:
            self.board = LeaseBoard(lease_timeout_s=spec.lease_timeout_s)

    @property
    def allow_partial(self) -> bool:
        return self.spec.allow_partial

    # -- self-hosting --------------------------------------------------

    @property
    def url(self) -> Optional[str]:
        """The coordinator URL workers connect to (self-hosted only)."""
        return self._server.url if self._server is not None else None

    def _ensure_server(self) -> None:
        if not self._owns_board or self._server is not None:
            return
        from .coordinator import start_coordinator

        host, port = self.spec.bind_address()
        self._server = start_coordinator(host, port, self.board)
        for i in range(self.spec.local_workers):
            self._local_procs.append(self._spawn_local_worker(i))

    def _spawn_local_worker(self, index: int) -> subprocess.Popen:
        env = dict(os.environ)
        # Workers import repro; make sure they resolve the same tree.
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", self.url,
                "--id", f"local-{index}",
                "--idle-exit", "60",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    # -- execution -----------------------------------------------------

    def execute(
        self,
        scenarios: Sequence,
        hooks: Optional[ExecutionHooks] = None,
    ) -> Tuple[List[Optional[Any]], List[CellFailure]]:
        from ..api.pairing import scenario_key

        hooks = hooks or ExecutionHooks()
        self._ensure_server()
        board = self.board
        scenarios = list(scenarios)
        total = len(scenarios)
        results: List[Optional[Any]] = [None] * total
        failures: List[CellFailure] = []

        items = []
        shared_flags = []
        for sc in scenarios:
            item, shared = board.submit(
                scenario_key(sc),
                scenario_to_wire(sc),
                max_attempts=self.spec.max_attempts,
                describe=sc.describe(),
            )
            items.append(item)
            shared_flags.append(shared)

        # Write-behind flusher: applies store/manifest/progress side
        # effects strictly in grid order as the settled prefix grows,
        # without ever blocking the observe loop on store I/O.
        settled = [False] * total
        flush_cond = threading.Condition()
        aborted = False

        def flusher() -> None:
            flushed = 0
            while flushed < total:
                with flush_cond:
                    while not settled[flushed]:
                        if aborted:
                            return
                        flush_cond.wait(0.2)
                hooks.flush_done(
                    flushed, total, scenarios[flushed], results[flushed]
                )
                flushed += 1

        flush_thread = threading.Thread(
            target=flusher, name="repro-dist-flusher", daemon=True
        )
        flush_thread.start()

        observed_attempts = [0] * total
        remaining = set(range(total))
        try:
            while remaining:
                board.sweep()
                for index in sorted(remaining):
                    item = items[index]
                    attempts = item.attempts
                    status = item.status
                    if status not in (DONE, QUARANTINED):
                        # Surface retries as they happen: attempts grew
                        # past what we reported but the cell isn't
                        # settled, so an earlier attempt failed.
                        while observed_attempts[index] < attempts - 1:
                            observed_attempts[index] += 1
                            hooks.emit({
                                "type": "retry",
                                "index": index,
                                "total": total,
                                "attempt": observed_attempts[index],
                                "max_attempts": item.max_attempts,
                                "kind": "lease",
                                "error": item.error,
                            })
                        continue
                    remaining.discard(index)
                    observed_attempts[index] = attempts
                    if status == DONE:
                        # A fresh RunResult per observer: campaigns
                        # sharing this cell must not share the mutable
                        # object (each stamps its own provenance).
                        results[index] = result_from_wire(item.result)
                        hooks.emit({
                            "type": "cell",
                            "index": index,
                            "total": total,
                            "source": "sim",
                            "attempts": attempts,
                            "worker": item.worker,
                            "shared": shared_flags[index],
                            "scenario": scenarios[index].describe(),
                        })
                    else:
                        error = item.error or "quarantined"
                        failures.append(CellFailure(
                            index=index,
                            scenario=scenarios[index],
                            attempts=attempts,
                            error=error,
                        ))
                        hooks.record_quarantine(scenarios[index], error)
                        hooks.emit({
                            "type": "quarantine",
                            "index": index,
                            "total": total,
                            "attempts": attempts,
                            "error": error,
                        })
                    with flush_cond:
                        settled[index] = True
                        flush_cond.notify_all()
                if remaining:
                    board.wait(0.1)
        except BaseException:
            with flush_cond:
                aborted = True
                flush_cond.notify_all()
            flush_thread.join(timeout=5)
            raise
        finally:
            for item in items:
                board.retire(item)

        flush_thread.join()
        return results, failures

    def close(self) -> None:
        for proc in self._local_procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._local_procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._local_procs = []
        if self._server is not None:
            self._server.close()
            self._server = None
