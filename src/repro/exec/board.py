"""The lease board: pull-based work-stealing state for distributed runs.

The coordinator owns one :class:`LeaseBoard`; remote workers never push
work to each other — an idle worker *pulls* the next pending cell by
taking a **lease** on it.  A lease is a time-boxed exclusive claim:

* ``lease()`` hands out the oldest pending item FIFO and starts its
  expiry clock (``lease_timeout_s``);
* ``heartbeat()`` renews every lease a worker holds — a healthy worker
  heartbeats at a fraction of the timeout while simulating;
* a lease that misses its heartbeat window **expires**: the cell counts
  one failed attempt (the worker presumably crashed or vanished) and
  returns to pending for the next idle worker to steal — this is the
  entire crash-recovery story, there is no other failure detector;
* ``complete()`` / ``fail()`` settle an attempt; first completion wins,
  and a straggler's late result for an already-settled item is
  acknowledged but discarded (results are deterministic, so a duplicate
  is byte-identical anyway).

Items are keyed by pairing key, so two overlapping campaigns submitted
to the same board **share** cells: the second ``submit`` of a key
refcounts the existing item instead of queueing a duplicate simulation,
and both campaigns observe the one settled result.

Attempts exhausted → ``quarantined`` (the PR 8 vocabulary), carried
back to the campaign as a :class:`~repro.exec.base.CellFailure`.
Administrative release (``release_worker`` / ``release_all``, used by
``JobManager.shutdown``) refunds the attempt: shutdown is not the
cell's fault, so it must never push a cell toward quarantine.

Thread-safe; everything is guarded by one condition variable, and
``wait()`` lets the coordinator sleep until something settles.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LeaseBoard", "WorkItem", "PENDING", "LEASED", "DONE", "QUARANTINED"]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"


class WorkItem:
    """One simulation cell on the board, shared across campaigns by key."""

    __slots__ = (
        "item_id", "key", "payload", "max_attempts", "status", "attempts",
        "lease_id", "worker", "expires_at", "result", "error", "refs",
        "describe",
    )

    def __init__(self, item_id, key, payload, max_attempts, describe=""):
        self.item_id = item_id
        self.key = key
        self.payload = payload
        self.max_attempts = max_attempts
        self.describe = describe
        self.status = PENDING
        self.attempts = 0
        self.lease_id: Optional[str] = None
        self.worker: Optional[str] = None
        self.expires_at: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.refs = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "item_id": self.item_id,
            "status": self.status,
            "attempts": self.attempts,
            "worker": self.worker,
            "refs": self.refs,
            "describe": self.describe,
        }


class LeaseBoard:
    """Shared pending/leased/done ledger behind the coordinator endpoints."""

    def __init__(self, lease_timeout_s: float = 30.0):
        self.lease_timeout_s = float(lease_timeout_s)
        self._cond = threading.Condition()
        self._items: Dict[Any, WorkItem] = {}  # pairing key -> item
        self._queue: List[Any] = []  # FIFO of pending keys
        self._leases: Dict[str, Any] = {}  # live lease_id -> key
        self._expired: Dict[str, Any] = {}  # expired lease_id -> key
        self._ids = itertools.count(1)
        self._worker_seen: Dict[str, float] = {}
        self._worker_cells: Dict[str, int] = {}

    # -- campaign side -------------------------------------------------

    def submit(
        self, key, payload, max_attempts: int = 3, describe: str = ""
    ) -> Tuple[WorkItem, bool]:
        """Queue one cell; dedup by pairing key across campaigns.

        Returns ``(item, shared)`` — ``shared`` is True when the key was
        already on the board (another campaign's identical cell), in
        which case this campaign just subscribes to the existing item.
        """
        with self._cond:
            item = self._items.get(key)
            if item is not None:
                item.refs += 1
                # The widest requirement wins: a later campaign asking
                # for more attempts must not be capped by an earlier one.
                item.max_attempts = max(item.max_attempts, max_attempts)
                return item, True
            item = WorkItem(
                next(self._ids), key, payload, max_attempts, describe
            )
            item.refs = 1
            self._items[key] = item
            self._queue.append(key)
            self._cond.notify_all()
            return item, False

    def retire(self, item: WorkItem) -> None:
        """Drop one campaign's subscription; GC the item when unreferenced.

        Only settled items are garbage-collected — an in-flight cell
        stays on the board so a late lease can still settle it.
        """
        with self._cond:
            item.refs = max(0, item.refs - 1)
            if item.refs == 0 and item.status in (DONE, QUARANTINED):
                self._items.pop(item.key, None)

    # -- worker side ---------------------------------------------------

    def lease(self, worker: str) -> Optional[Dict[str, Any]]:
        """Hand the oldest pending cell to ``worker``, or None if idle."""
        with self._cond:
            now = time.monotonic()
            self._expire_locked(now)
            self._worker_seen[worker] = now
            while self._queue:
                key = self._queue.pop(0)
                item = self._items.get(key)
                if item is None or item.status != PENDING:
                    continue  # settled or GC'd while queued
                item.status = LEASED
                item.attempts += 1
                item.worker = worker
                item.lease_id = uuid.uuid4().hex
                item.expires_at = now + self.lease_timeout_s
                self._leases[item.lease_id] = key
                return {
                    "lease_id": item.lease_id,
                    "attempt": item.attempts,
                    "key": list(item.key),
                    "cell": item.payload,
                    "describe": item.describe,
                    "lease_timeout_s": self.lease_timeout_s,
                }
            return None

    def heartbeat(self, worker: str) -> int:
        """Renew every lease ``worker`` holds; returns how many."""
        with self._cond:
            now = time.monotonic()
            self._worker_seen[worker] = now
            renewed = 0
            for key in self._leases.values():
                item = self._items.get(key)
                if item is not None and item.status == LEASED and \
                        item.worker == worker:
                    item.expires_at = now + self.lease_timeout_s
                    renewed += 1
            return renewed

    def complete(self, lease_id: str, result: Dict[str, Any]) -> bool:
        """Settle a lease's cell with its result dict; first wins.

        A result arriving after the lease expired (slow worker, not dead)
        is still accepted if the cell hasn't settled — the work is done
        and deterministic, so discarding it would only waste a re-run.
        """
        with self._cond:
            key = self._leases.pop(lease_id, None)
            if key is None:
                # An expired lease's result is still good (the worker
                # was slow, not dead) as long as the cell is unsettled.
                key = self._expired.pop(lease_id, None)
            if key is None:
                return False
            item = self._items.get(key)
            if item is None or item.status in (DONE, QUARANTINED):
                return False
            if item.status == PENDING and key in self._queue:
                # The lease expired and the cell re-queued, but the
                # original worker finished anyway: take its result and
                # pull the cell back off the queue.
                self._queue.remove(key)
            item.status = DONE
            item.result = result
            item.lease_id = None
            item.expires_at = None
            self._purge_expired_locked(key)
            if item.worker:
                self._worker_cells[item.worker] = (
                    self._worker_cells.get(item.worker, 0) + 1
                )
            self._cond.notify_all()
            return True

    def fail(self, lease_id: str, error: str) -> bool:
        """Record a failed attempt; re-queue or quarantine."""
        with self._cond:
            key = self._leases.pop(lease_id, None)
            if key is None:
                # A late failure report: the expiry already counted the
                # attempt, so just forget the stale lease.
                self._expired.pop(lease_id, None)
                return False
            item = self._items.get(key)
            if item is None or item.status != LEASED:
                return False
            self._fail_locked(item, error)
            self._cond.notify_all()
            return True

    # -- supervision ---------------------------------------------------

    def sweep(self) -> None:
        """Expire overdue leases now (the coordinator calls this in its
        wait loop so recovery does not depend on worker traffic)."""
        with self._cond:
            if self._expire_locked(time.monotonic()):
                self._cond.notify_all()

    def release_worker(self, worker: str) -> int:
        """Administratively return ``worker``'s leased cells to pending.

        The attempt is refunded: an operator draining a worker (or
        ``JobManager.shutdown``) must not push cells toward quarantine.
        """
        with self._cond:
            released = 0
            for lease_id, key in list(self._leases.items()):
                item = self._items.get(key)
                if item is not None and item.status == LEASED and \
                        item.worker == worker:
                    self._release_locked(item, lease_id)
                    released += 1
            if released:
                self._cond.notify_all()
            return released

    def release_all(self) -> int:
        """Return every leased cell to pending (coordinator shutdown)."""
        with self._cond:
            released = 0
            for lease_id, key in list(self._leases.items()):
                item = self._items.get(key)
                if item is not None and item.status == LEASED:
                    self._release_locked(item, lease_id)
                    released += 1
            if released:
                self._cond.notify_all()
            return released

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the board changes (settle/submit) or timeout."""
        with self._cond:
            self._cond.wait(timeout)

    def counts(self) -> Dict[str, int]:
        with self._cond:
            out = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
            for item in self._items.values():
                out[item.status] += 1
            return out

    def workers(self) -> Dict[str, Dict[str, Any]]:
        with self._cond:
            now = time.monotonic()
            return {
                name: {
                    "cells_done": self._worker_cells.get(name, 0),
                    "last_seen_s": round(now - seen, 3),
                }
                for name, seen in sorted(self._worker_seen.items())
            }

    # -- internals (call with the lock held) ---------------------------

    def _expire_locked(self, now: float) -> int:
        expired = 0
        for lease_id, key in list(self._leases.items()):
            item = self._items.get(key)
            if item is None or item.status != LEASED:
                self._leases.pop(lease_id, None)
                continue
            if item.expires_at is not None and now >= item.expires_at:
                self._leases.pop(lease_id, None)
                self._expired[lease_id] = key
                self._fail_locked(
                    item,
                    f"lease expired after {self.lease_timeout_s:g}s — "
                    f"worker {item.worker!r} missed its heartbeat "
                    f"(crashed, killed, or partitioned)",
                )
                expired += 1
        return expired

    def _fail_locked(self, item: WorkItem, error: str) -> None:
        item.lease_id = None
        item.expires_at = None
        if item.attempts >= item.max_attempts:
            item.status = QUARANTINED
            item.error = error
            self._purge_expired_locked(item.key)
        else:
            item.status = PENDING
            item.error = error
            self._queue.append(item.key)

    def _purge_expired_locked(self, key) -> None:
        """A settled cell's expired lease ids can't matter any more."""
        self._expired = {
            lid: k for lid, k in self._expired.items() if k != key
        }

    def _release_locked(self, item: WorkItem, lease_id: str) -> None:
        self._leases.pop(lease_id, None)
        item.status = PENDING
        item.attempts = max(0, item.attempts - 1)  # refund: not a failure
        item.lease_id = None
        item.worker = None
        item.expires_at = None
        self._queue.append(item.key)
