"""The executor contract: what every campaign execution backend implements.

A :class:`CampaignExecutor` takes an ordered scenario list and settles
every cell exactly once, honouring four invariants that the rest of the
stack (stores, manifests, the run cache, the campaign server) builds on:

* **input order** — the returned result list lines up index-for-index
  with the input scenarios, whatever order cells actually executed in;
* **settled-prefix flush** — ``store`` / ``manifest`` / ``progress``
  side effects happen strictly in grid order as the completed prefix
  grows, so persisted output is byte-identical to a serial run even
  when execution is parallel, supervised, or distributed;
* **ledger trails store** — ``manifest.record_done`` fires only after
  the row reached the store, never before;
* **explicit failure** — a cell that cannot be completed surfaces as a
  :class:`CellFailure` (and ultimately a
  :class:`CampaignIncompleteError`), never as a silently missing row.

Backends: :class:`~repro.exec.local.SerialExecutor` (in-process),
:class:`~repro.exec.local.PoolExecutor` (process pool),
:class:`~repro.exec.supervised.SupervisedExecutor` (process-per-cell
watchdog/retry/quarantine), and
:class:`~repro.exec.distributed.DistributedExecutor` (multi-host
work-stealing over HTTP).  :func:`get_executor` maps an
:class:`~repro.exec.spec.ExecutorSpec` to the right one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError

__all__ = [
    "CampaignExecutor",
    "CellFailure",
    "CampaignIncompleteError",
    "ExecutionHooks",
    "get_executor",
]


@dataclass
class CellFailure:
    """One quarantined grid cell: where, how often, and why it failed."""

    index: int
    scenario: Any
    attempts: int
    error: str

    def describe(self) -> str:
        tail = self.error.strip().splitlines()
        reason = tail[-1] if tail else "unknown failure"
        return (
            f"cell {self.index} ({self.scenario.describe()}): quarantined "
            f"after {self.attempts} attempts — {reason}"
        )


class CampaignIncompleteError(ExperimentError):
    """A fault-tolerant campaign finished with quarantined cells.

    Raised instead of returning a silent partial result: every completed
    cell was already persisted to the attached store, so fixing the
    cause and re-running with resume re-simulates only the quarantined
    remainder.  ``failures`` lists the quarantined cells with their
    tracebacks; ``results`` is the index-aligned partial result list
    (``None`` in quarantined slots); ``report`` carries the manifest's
    status report when a manifest was attached.
    """

    def __init__(
        self,
        failures: List[CellFailure],
        results: List[Optional[Any]],
        total: int,
        report: Optional[Dict[str, Any]] = None,
    ):
        self.failures = failures
        self.results = results
        self.report = report
        lines = [
            f"campaign incomplete: {len(failures)} of {total} cells "
            f"quarantined after exhausting retries"
        ]
        lines.extend(f"  {failure.describe()}" for failure in failures)
        lines.append(
            "  completed cells are persisted; re-run with resume to retry "
            "only the quarantined remainder"
        )
        super().__init__("\n".join(lines))


class ExecutionHooks:
    """The side-effect surface one :meth:`CampaignExecutor.execute` call
    flushes into: store, manifest, progress callback, event sink.

    Bundling them keeps every executor's signature identical and gives
    the settled-prefix flush one home (:meth:`flush_done`): stamp the
    experiment provenance, append to the store, record the manifest
    ``done`` strictly after the append, then report progress.
    """

    def __init__(
        self,
        store=None,
        progress: Optional[Callable[[int, int, Any], None]] = None,
        experiment: Optional[str] = None,
        manifest=None,
        on_cell_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.store = store
        self.progress = progress
        self.experiment = experiment
        self.manifest = manifest
        self.on_cell_event = on_cell_event

    def emit(self, event: Dict[str, Any]) -> None:
        if self.on_cell_event is not None:
            self.on_cell_event(event)

    def manifest_key(self, scenario) -> Any:
        from ..api.pairing import scenario_key

        return scenario_key(scenario)

    def flush_done(self, index: int, total: int, scenario, run) -> None:
        """One settled-prefix step for a completed cell, in grid order."""
        if run is not None:
            if self.experiment is not None:
                run.experiment = self.experiment
            if self.store is not None:
                self.store.append(run)
            if self.manifest is not None:
                # Strictly after the store append: the ledger trails the
                # store, never leads it.
                self.manifest.record_done(self.manifest_key(scenario))
        if self.progress is not None:
            self.progress(index, total, scenario)

    def record_quarantine(self, scenario, error: str) -> None:
        if self.manifest is not None:
            self.manifest.record_quarantine(self.manifest_key(scenario), error)


class CampaignExecutor:
    """Protocol: execute a scenario grid, settle every cell exactly once.

    ``execute`` returns ``(results, failures)``: the index-aligned result
    list (``None`` in failed slots) and the quarantined cells.  Backends
    without a retry/quarantine notion (serial, pool) let cell exceptions
    propagate and always return an empty failure list.  ``close``
    releases whatever the executor holds open (process pools, the
    distributed coordinator server, spawned local workers); it must be
    idempotent.
    """

    #: The ExecutorSpec kind this backend answers to.
    kind: str = "?"

    @property
    def allow_partial(self) -> bool:
        """Whether quarantined cells return as ``None`` slots instead of
        raising :class:`CampaignIncompleteError` (fault-tolerant kinds
        override this from their policy)."""
        return False

    def execute(
        self,
        scenarios: Sequence,
        hooks: Optional[ExecutionHooks] = None,
    ) -> Tuple[List[Optional[Any]], List[CellFailure]]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


def get_executor(spec, board=None) -> CampaignExecutor:
    """Instantiate the executor backend an :class:`ExecutorSpec` names.

    ``spec`` is anything :meth:`ExecutorSpec.normalize` accepts — a
    spec, its compact string form, or a JSON dict.  ``board`` attaches a
    distributed executor to an existing
    :class:`~repro.exec.board.LeaseBoard` (the campaign server's) instead
    of self-hosting a coordinator.
    """
    from .spec import ExecutorSpec

    spec = ExecutorSpec.normalize(spec)
    kind = spec.kind
    if kind == "serial":
        from .local import SerialExecutor

        return SerialExecutor()
    if kind == "pool":
        from .local import PoolExecutor

        return PoolExecutor(jobs=spec.jobs)
    if kind == "supervised":
        from .supervised import SupervisedExecutor

        return SupervisedExecutor(spec.supervisor(), jobs=spec.jobs)
    if kind == "distributed":
        from .distributed import DistributedExecutor

        return DistributedExecutor(spec, board=board)
    raise ExperimentError(f"unknown executor kind {kind!r}")
