"""Scenario / result wire format for the distributed executor.

Every scenario is fully specified by its ``(NetworkConfig, RunOptions)``
pair and the simulator is deterministic, so shipping those two dicts to
a remote worker and running ``simulate`` there produces a bit-identical
:class:`~repro.results.RunResult` to running locally — the property the
whole distributed backend leans on.  Results come back as
``RunResult.to_dict()`` payloads, which round-trip exactly (PR 6 pins
this), so stored rows are byte-identical at any worker count.

Scenario ``tags`` deliberately do not cross the wire: they may hold
non-JSON values (``Protocol`` enums, callables) and they never influence
the simulation — they are caller-side bookkeeping, re-attached by the
coordinator when results settle.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..api.engine import RunOptions
from ..api.result import RunResult
from ..api.scenario import Scenario
from ..config import NetworkConfig

__all__ = [
    "scenario_to_wire",
    "scenario_from_wire",
    "result_to_wire",
    "result_from_wire",
]


def scenario_to_wire(scenario: Scenario) -> Dict[str, Any]:
    """JSON-safe payload a remote worker can rebuild the scenario from."""
    return {
        "config": scenario.config.to_dict(),
        "options": dataclasses.asdict(scenario.options),
        "describe": scenario.describe(),
    }


def scenario_from_wire(data: Dict[str, Any]) -> Scenario:
    return Scenario(
        config=NetworkConfig.from_dict(data["config"]),
        options=RunOptions(**data["options"]),
    )


def result_to_wire(run: RunResult) -> Dict[str, Any]:
    return run.to_dict()


def result_from_wire(data: Dict[str, Any]) -> RunResult:
    return RunResult.from_dict(data)
