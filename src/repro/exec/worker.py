"""The remote worker loop: lease → simulate → report, forever.

A worker is deliberately dumb and stateless — all coordination state
(what is pending, who holds what, retry budgets) lives on the
coordinator's lease board.  The loop is:

1. ``POST /work/lease`` — pull the next pending cell, or idle-poll;
2. rebuild the scenario from the wire payload and simulate it, with a
   background heartbeat renewing the lease at a third of its timeout so
   long-running cells are not stolen while healthy;
3. ``POST /work/result`` — ship ``RunResult.to_dict()`` back (or the
   traceback on failure) and immediately ask for more work.

If the worker dies mid-cell the heartbeat stops, the lease expires, and
the coordinator re-queues the cell — no worker-side cleanup needed.
Determinism makes workers interchangeable: whichever worker runs a cell
produces the same bytes.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from .supervised import consult_worker_faults
from .wire import scenario_from_wire

__all__ = ["run_worker", "WorkerStats"]


class WorkerStats:
    """What one worker loop did, for the CLI summary and tests."""

    def __init__(self) -> None:
        self.cells_done = 0
        self.cells_failed = 0
        self.polls = 0


def _post(url: str, payload: Dict[str, Any], timeout: float = 10.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read() or b"{}")


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    connect: str,
    worker_id: Optional[str] = None,
    poll_s: float = 0.2,
    idle_exit_s: Optional[float] = None,
    max_cells: Optional[int] = None,
    stop: Optional[threading.Event] = None,
    quiet: bool = True,
) -> WorkerStats:
    """Serve a coordinator at ``connect`` until told (or asked) to stop.

    ``idle_exit_s`` ends the loop after that long without work (used by
    CI and spawned local workers so they drain and exit); ``max_cells``
    caps how many cells this worker will run (tests); ``stop`` is an
    external kill switch.  Connection errors are retried — a worker may
    outlive a coordinator restart — but give up after ~30s of refusals.
    """
    base = connect.rstrip("/")
    worker = worker_id or _default_worker_id()
    stats = WorkerStats()
    idle_since: Optional[float] = None
    refused_since: Optional[float] = None

    def say(text: str) -> None:
        if not quiet:
            print(f"[worker {worker}] {text}", flush=True)

    while not (stop is not None and stop.is_set()):
        if max_cells is not None and stats.cells_done >= max_cells:
            break
        try:
            lease = _post(f"{base}/work/lease", {"worker": worker})["lease"]
            refused_since = None
        except (urllib.error.URLError, OSError, ValueError):
            now = time.monotonic()
            refused_since = refused_since or now
            if now - refused_since > 30.0:
                say("coordinator unreachable for 30s — giving up")
                break
            time.sleep(min(1.0, poll_s * 4))
            continue

        if lease is None:
            stats.polls += 1
            now = time.monotonic()
            idle_since = idle_since or now
            if idle_exit_s is not None and now - idle_since >= idle_exit_s:
                say("idle — exiting")
                break
            time.sleep(poll_s)
            continue
        idle_since = None

        lease_id = lease["lease_id"]
        attempt = int(lease.get("attempt") or 1)
        interval = max(0.05, float(lease.get("lease_timeout_s") or 30.0) / 3)
        done = threading.Event()

        def beat() -> None:
            while not done.wait(interval):
                try:
                    _post(f"{base}/work/heartbeat", {"worker": worker})
                except (urllib.error.URLError, OSError, ValueError):
                    pass  # a missed beat just shortens the lease's slack

        heart = threading.Thread(target=beat, daemon=True)
        heart.start()
        try:
            scenario = scenario_from_wire(lease["cell"])
            consult_worker_faults(scenario, attempt)
            run = scenario.run()
            report = {"lease_id": lease_id, "worker": worker,
                      "run": run.to_dict()}
            stats.cells_done += 1
            say(f"done {lease.get('describe') or lease_id}")
        except BaseException:  # noqa: BLE001 - report, don't die
            import traceback

            report = {"lease_id": lease_id, "worker": worker,
                      "error": traceback.format_exc()}
            stats.cells_failed += 1
            say(f"failed {lease.get('describe') or lease_id}")
        finally:
            done.set()
            heart.join(timeout=2)

        try:
            _post(f"{base}/work/result", report)
        except (urllib.error.URLError, OSError, ValueError):
            # Couldn't deliver: the lease will expire and the cell will
            # be retried elsewhere. Deterministic, so no harm done.
            say("failed to deliver result — lease will expire")
    return stats
