"""Coordinator HTTP surface for the distributed executor.

The wire protocol is four stdlib-only JSON endpoints in front of a
:class:`~repro.exec.board.LeaseBoard`:

* ``POST /work/lease``      ``{"worker": id}`` → ``{"lease": {...}|null}``
* ``POST /work/result``     ``{"lease_id", "worker", "run"|"error"}``
  → ``{"accepted": bool}``
* ``POST /work/heartbeat``  ``{"worker": id}`` → ``{"ok", "leases"}``
* ``GET  /work/status``     → board counts + per-worker stats

:func:`handle_work` implements the routes as a transport-independent
``(status, payload)`` function so the same code serves two hosts: the
standalone :class:`CoordinatorServer` below (what ``--executor
distributed`` self-hosts from the CLI) and the campaign server's handler
(``repro-caem serve --distributed``), which delegates ``/work/*`` here.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple

from .board import LeaseBoard

__all__ = ["handle_work", "CoordinatorServer", "start_coordinator"]


def handle_work(
    board: LeaseBoard,
    method: str,
    parts: Sequence[str],
    body: Optional[Dict[str, Any]],
) -> Optional[Tuple[int, Dict[str, Any]]]:
    """Route one ``/work/*`` request against ``board``.

    ``parts`` is the split request path (``["work", "lease"]``).  Returns
    ``(http_status, json_payload)``, or ``None`` when the path is not a
    work route (the caller 404s).
    """
    if not parts or parts[0] != "work" or len(parts) != 2:
        return None
    action = parts[1]

    if method == "GET":
        if action != "status":
            return None
        return 200, {
            "counts": board.counts(),
            "workers": board.workers(),
            "lease_timeout_s": board.lease_timeout_s,
        }
    if method != "POST":
        return None
    body = body or {}

    if action == "lease":
        worker = str(body.get("worker") or "anonymous")
        return 200, {"lease": board.lease(worker)}

    if action == "heartbeat":
        worker = str(body.get("worker") or "anonymous")
        return 200, {"ok": True, "leases": board.heartbeat(worker)}

    if action == "result":
        lease_id = body.get("lease_id")
        if not lease_id:
            return 400, {"error": "result requires a lease_id"}
        if "run" in body:
            accepted = board.complete(str(lease_id), body["run"])
        else:
            error = str(body.get("error") or "worker reported failure")
            accepted = board.fail(str(lease_id), error)
        return 200, {"accepted": accepted}

    return None


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Minimal JSON handler: every route is a :func:`handle_work` call."""

    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"
    # 1 MB cap — a result payload is a few KB; anything bigger is a bug.
    max_body = 1_000_000

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        raw = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _dispatch(self, method: str) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > self.max_body:
                self._respond(413, {"error": "request body too large"})
                return
            try:
                body = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, UnicodeDecodeError):
                self._respond(400, {"error": "request body is not JSON"})
                return
        try:
            routed = handle_work(self.server.board, method, parts, body)
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            self._respond(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if routed is None:
            self._respond(404, {"error": f"no such route: {self.path}"})
            return
        self._respond(*routed)

    def do_GET(self):  # noqa: N802
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")


class CoordinatorServer(ThreadingHTTPServer):
    """Self-hosted work server for CLI-driven distributed campaigns."""

    daemon_threads = True

    def __init__(self, address, board: LeaseBoard, quiet: bool = True):
        super().__init__(address, _CoordinatorHandler)
        self.board = board
        self.quiet = quiet
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def start_coordinator(
    host: str, port: int, board: LeaseBoard, quiet: bool = True
) -> CoordinatorServer:
    """Bind + start a coordinator; ``port=0`` picks a free port."""
    return CoordinatorServer((host, port), board, quiet=quiet).start()
