"""The fault-tolerant executor: one worker process per cell attempt.

Moved from ``repro.api.campaign`` (PR 8) into the executor package:
every grid cell runs in its **own worker process** under a wall-clock
watchdog, which is what makes the recovery guarantees possible — a hung
cell can be SIGKILLed without collateral damage, and a crashed worker
takes down exactly one attempt.  Crashes (pipe EOF) and exceptions
(traceback carried) retry under capped exponential backoff with
deterministic jitter; a cell that exhausts its attempts is quarantined
with its traceback, never silently dropped.

Results are flushed to the store (and progress) strictly in grid order
as the completed prefix grows, so persisted output is byte-identical to
serial execution; the manifest records ``done`` only after the row is
flushed, keeping the ledger honest about what the store holds.
"""

from __future__ import annotations

import heapq
import os
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .base import CampaignExecutor, CellFailure, ExecutionHooks
from .local import execute_scenario

__all__ = ["SupervisorConfig", "SupervisedExecutor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerant execution policy (the supervised executor's knobs).

    When a supervisor is active, every grid cell runs in its **own
    worker process** under a wall-clock watchdog: a worker that crashes
    (any hard death — segfault, OOM kill, injected ``os._exit``), raises,
    or exceeds ``cell_timeout_s`` is retried with capped exponential
    backoff (+deterministic jitter, so tests replay exactly), up to
    ``max_attempts`` total attempts.  A cell that exhausts its attempts
    is *quarantined*: recorded (with its traceback) in the campaign
    manifest when one is attached, and either reported via
    :class:`~repro.exec.base.CampaignIncompleteError` (the default) or
    returned as a ``None`` slot when ``allow_partial`` — never silently
    dropped, never an infinite hang.
    """

    #: Per-cell wall-clock watchdog; ``None`` = no timeout.
    cell_timeout_s: Optional[float] = None
    #: Total attempts per cell (first try + retries).
    max_attempts: int = 3
    #: First retry delay; doubles per retry up to :attr:`backoff_cap_s`.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    #: Return ``None`` slots for quarantined cells instead of raising.
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ExperimentError("cell_timeout_s must be > 0 (or None)")
        if self.max_attempts < 1:
            raise ExperimentError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ExperimentError("backoff delays must be >= 0")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """The deterministic retry delay after ``attempt`` failed.

        Capped exponential with jitter in [50%, 100%] of the nominal
        delay; a pure function of ``(seed, index, attempt)`` so recovery
        schedules replay identically in tests.
        """
        nominal = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        rng = random.Random(
            self.seed * 1_000_003 + index * 10_007 + attempt
        )
        return nominal * (0.5 + rng.random() / 2)


def _supervised_child(conn, scenario, attempt: int) -> None:
    """Body of one supervised worker process: run one cell, one attempt.

    Sends ``("ok", RunResult)`` or ``("error", traceback_text)`` back
    over ``conn``.  A hard death (crash injection, SIGKILL, OOM) sends
    nothing — the parent reads EOF and treats it as a crash.
    """
    try:
        consult_worker_faults(scenario, attempt)
        run = execute_scenario(scenario)
        conn.send(("ok", run))
    except BaseException:  # noqa: BLE001 - full isolation barrier
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def consult_worker_faults(scenario, attempt: int) -> None:
    """Chaos hook: let an active fault plan crash/stall this worker.

    The key includes the cell's pairing key *and* the attempt number, so
    "crash on attempt 1, succeed on attempt 2" is a deterministic,
    replayable scenario (see :mod:`repro.service.faults`).  Shared by
    the supervised worker child and the distributed worker loop.
    """
    if not os.environ.get("REPRO_FAULTS"):
        return
    from ..service.faults import active_faults

    faults = active_faults()
    if faults is None:
        return
    from ..api.pairing import scenario_key

    key = "|".join(map(str, scenario_key(scenario))) + f"|attempt={attempt}"
    faults.worker_entry(key)


class SupervisedExecutor(CampaignExecutor):
    """Watchdog + retry + quarantine over process-per-cell workers."""

    kind = "supervised"

    def __init__(self, config: SupervisorConfig, jobs: int = 1):
        self.config = config
        self.jobs = max(1, jobs)

    @property
    def allow_partial(self) -> bool:
        return self.config.allow_partial

    def execute(
        self,
        scenarios: Sequence,
        hooks: Optional[ExecutionHooks] = None,
    ) -> Tuple[List[Optional[Any]], List[CellFailure]]:
        import multiprocessing as mp
        from multiprocessing.connection import wait as conn_wait

        hooks = hooks or ExecutionHooks()
        supervise = self.config
        ctx = mp.get_context()
        scenarios = list(scenarios)
        total = len(scenarios)
        results: List[Optional[Any]] = [None] * total
        settled = [False] * total  # done or quarantined
        attempts = [0] * total
        failures: List[CellFailure] = []
        ready: deque = deque(range(total))
        delayed: List[Tuple[float, int]] = []  # (not_before, index) heap
        active: Dict[Any, Dict[str, Any]] = {}  # recv-conn -> task
        flushed = 0
        workers = self.jobs

        def flush() -> None:
            """Advance the settled prefix: persist + report in grid order."""
            nonlocal flushed
            while flushed < total and settled[flushed]:
                hooks.flush_done(
                    flushed, total, scenarios[flushed], results[flushed]
                )
                flushed += 1

        def launch(index: int) -> None:
            attempts[index] += 1
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_supervised_child,
                args=(send_conn, scenarios[index], attempts[index]),
                daemon=True,
            )
            proc.start()
            send_conn.close()
            deadline = (
                time.monotonic() + supervise.cell_timeout_s
                if supervise.cell_timeout_s is not None
                else None
            )
            active[recv_conn] = {"index": index, "proc": proc,
                                 "deadline": deadline}

        def settle_ok(index: int, run: Any) -> None:
            results[index] = run
            settled[index] = True
            hooks.emit({
                "type": "cell",
                "index": index,
                "total": total,
                "source": "sim",
                "attempts": attempts[index],
                "scenario": scenarios[index].describe(),
            })
            flush()

        def settle_fail(index: int, error_text: str, kind: str) -> None:
            if attempts[index] < supervise.max_attempts:
                delay = supervise.backoff_delay(index, attempts[index])
                hooks.emit({
                    "type": "retry",
                    "index": index,
                    "total": total,
                    "attempt": attempts[index],
                    "max_attempts": supervise.max_attempts,
                    "delay_s": delay,
                    "kind": kind,
                })
                heapq.heappush(delayed, (time.monotonic() + delay, index))
                return
            settled[index] = True
            failures.append(CellFailure(
                index=index,
                scenario=scenarios[index],
                attempts=attempts[index],
                error=error_text,
            ))
            hooks.record_quarantine(scenarios[index], error_text)
            hooks.emit({
                "type": "quarantine",
                "index": index,
                "total": total,
                "attempts": attempts[index],
                "error": error_text,
            })
            flush()

        while ready or delayed or active:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index = heapq.heappop(delayed)
                ready.append(index)
            while ready and len(active) < workers:
                launch(ready.popleft())
            if not active:
                # Only backoff-delayed cells remain: sleep toward the next.
                if delayed:
                    time.sleep(
                        min(0.05, max(0.0, delayed[0][0] - time.monotonic()))
                    )
                continue

            waits = []
            deadlines = [
                task["deadline"] for task in active.values()
                if task["deadline"] is not None
            ]
            if deadlines:
                waits.append(min(deadlines) - now)
            if delayed:
                waits.append(delayed[0][0] - now)
            timeout = max(0.0, min(waits)) if waits else None
            fired = conn_wait(list(active), timeout=timeout)

            for conn in fired:
                task = active.pop(conn)
                index, proc = task["index"], task["proc"]
                message = None
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                conn.close()
                proc.join()
                if message is not None and message[0] == "ok":
                    settle_ok(index, message[1])
                elif message is not None and message[0] == "error":
                    settle_fail(index, message[1], "error")
                else:
                    settle_fail(
                        index,
                        f"worker process died without a result on attempt "
                        f"{attempts[index]} (exit code {proc.exitcode}) — "
                        f"crash, OOM kill, or SIGKILL",
                        "crash",
                    )

            # Watchdog: kill anything past its wall-clock deadline.
            now = time.monotonic()
            for conn, task in list(active.items()):
                if task["deadline"] is not None and now >= task["deadline"]:
                    task["proc"].kill()
                    task["proc"].join()
                    active.pop(conn)
                    conn.close()
                    settle_fail(
                        task["index"],
                        f"cell exceeded the wall-clock watchdog "
                        f"({supervise.cell_timeout_s:g}s) on attempt "
                        f"{attempts[task['index']]} and was killed",
                        "timeout",
                    )

        flush()
        return results, failures
