"""Campaign execution backends behind one :class:`ExecutorSpec` API.

Everything that decides *how* a scenario grid runs lives here:

* :mod:`~repro.exec.spec` — :class:`ExecutorSpec`, the one declarative
  value that names an execution policy, plus the ambient
  :func:`use_executor` context;
* :mod:`~repro.exec.base` — the :class:`CampaignExecutor` contract,
  :class:`ExecutionHooks` (store/manifest/progress/event surface), and
  the failure vocabulary (:class:`CellFailure`,
  :class:`CampaignIncompleteError`);
* :mod:`~repro.exec.local` — :class:`SerialExecutor` and
  :class:`PoolExecutor` (in-process / process pool);
* :mod:`~repro.exec.supervised` — :class:`SupervisedExecutor`, the PR 8
  watchdog/retry/quarantine machinery behind :class:`SupervisorConfig`;
* :mod:`~repro.exec.board` / :mod:`~repro.exec.coordinator` /
  :mod:`~repro.exec.worker` / :mod:`~repro.exec.distributed` — the
  multi-host work-stealing backend.

``repro.api.campaign`` re-exports the legacy names so existing imports
keep working; new code should import from here.
"""

from .base import (
    CampaignExecutor,
    CampaignIncompleteError,
    CellFailure,
    ExecutionHooks,
    get_executor,
)
from .board import LeaseBoard
from .local import PoolExecutor, SerialExecutor
from .spec import EXECUTOR_KINDS, ExecutorSpec, active_executor, use_executor
from .supervised import SupervisedExecutor, SupervisorConfig

__all__ = [
    "CampaignExecutor",
    "CampaignIncompleteError",
    "CellFailure",
    "ExecutionHooks",
    "ExecutorSpec",
    "EXECUTOR_KINDS",
    "LeaseBoard",
    "PoolExecutor",
    "SerialExecutor",
    "SupervisedExecutor",
    "SupervisorConfig",
    "active_executor",
    "get_executor",
    "use_executor",
]
