"""``ExecutorSpec``: one value that names *how* a campaign executes.

Before this existed, execution policy was scattered across three
spellings — ``jobs=N`` picked serial vs process-pool,
``SupervisorConfig``/``use_supervisor`` switched on fault tolerance, and
the CLI grew a flag per knob.  An :class:`ExecutorSpec` collapses all of
it into one declarative record that travels everywhere a campaign does:
``Campaign.run(executor=...)``, ``run_scenarios(executor=...)``, the CLI
``--executor`` flag, and the campaign server's JSON specs.

The four kinds::

    ExecutorSpec(kind="serial")                       # in-process, one cell at a time
    ExecutorSpec(kind="pool", jobs=4)                 # process-pool fan-out
    ExecutorSpec(kind="supervised", jobs=2,
                 cell_timeout_s=30.0, retries=2)      # watchdog/retry/quarantine
    ExecutorSpec(kind="distributed",
                 bind="127.0.0.1:8400",
                 lease_timeout_s=30.0, retries=2,
                 local_workers=2)                     # multi-host work-stealing

Each has a compact string form for the CLI and JSON specs —
``"serial"``, ``"pool:4"``, ``"supervised:jobs=2,timeout=30,retries=1"``,
``"distributed:bind=127.0.0.1:8400,local=2"`` — parsed by
:meth:`ExecutorSpec.parse`.

The legacy spellings keep working: :meth:`ExecutorSpec.from_legacy` maps
``(jobs, supervise)`` onto the equivalent spec, and the old keyword
arguments remain accepted (and equivalence-tested) everywhere they were
before.

:func:`use_executor` installs a spec (or a live executor) ambiently —
the same ContextVar pattern as ``use_run_cache`` — so the CLI's
``--executor`` flag reaches every registered experiment without
signature changes.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import ExperimentError

__all__ = [
    "ExecutorSpec",
    "EXECUTOR_KINDS",
    "use_executor",
    "active_executor",
]

EXECUTOR_KINDS = ("serial", "pool", "supervised", "distributed")

#: Compact-form key aliases accepted by :meth:`ExecutorSpec.parse`.
_PARSE_ALIASES = {
    "jobs": "jobs",
    "timeout": "cell_timeout_s",
    "cell_timeout_s": "cell_timeout_s",
    "retries": "retries",
    "seed": "seed",
    "partial": "allow_partial",
    "allow_partial": "allow_partial",
    "bind": "bind",
    "lease": "lease_timeout_s",
    "lease_timeout_s": "lease_timeout_s",
    "local": "local_workers",
    "local_workers": "local_workers",
}

_FLOAT_FIELDS = ("cell_timeout_s", "lease_timeout_s")
_INT_FIELDS = ("jobs", "retries", "seed", "local_workers")
_BOOL_FIELDS = ("allow_partial",)


@dataclass(frozen=True)
class ExecutorSpec:
    """Declarative execution policy for one campaign (or a whole session).

    Only the fields a kind consults matter to it: ``jobs`` is the pool
    width (pool) or worker-process concurrency (supervised);
    ``cell_timeout_s``/``retries``/backoff fields drive the supervised
    watchdog; ``bind``/``lease_timeout_s``/``local_workers`` configure
    the distributed coordinator.  ``retries`` counts attempts *beyond*
    the first (``None`` means the kind's default: 2 for supervised and
    distributed).
    """

    kind: str = "serial"
    #: Process-pool width (pool) / concurrent worker processes (supervised).
    jobs: int = 1
    #: Per-cell wall-clock watchdog (supervised); ``None`` = none.
    cell_timeout_s: Optional[float] = None
    #: Retries beyond the first attempt (supervised/distributed);
    #: ``None`` = the kind's default of 2.
    retries: Optional[int] = None
    #: Capped-exponential retry backoff (supervised).
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    #: Return ``None`` slots for quarantined cells instead of raising.
    allow_partial: bool = False
    #: Distributed: ``host:port`` the self-hosted coordinator binds
    #: (port 0 picks a free port; ignored when attached to a server).
    bind: str = "127.0.0.1:0"
    #: Distributed: a lease not heartbeat-renewed within this window
    #: expires and its cell returns to pending.
    lease_timeout_s: float = 30.0
    #: Distributed: loopback ``repro-caem worker`` subprocesses the
    #: executor spawns (and reaps) itself — handy for single-command
    #: multi-core runs and CI smoke tests.
    local_workers: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EXECUTOR_KINDS:
            raise ExperimentError(
                f"unknown executor kind {self.kind!r}; "
                f"know {', '.join(EXECUTOR_KINDS)}"
            )
        if self.jobs < 1:
            raise ExperimentError("executor jobs must be >= 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ExperimentError("cell_timeout_s must be > 0 (or None)")
        if self.retries is not None and self.retries < 0:
            raise ExperimentError("retries must be >= 0")
        if self.lease_timeout_s <= 0:
            raise ExperimentError("lease_timeout_s must be > 0")
        if self.local_workers < 0:
            raise ExperimentError("local_workers must be >= 0")

    # -- derived views ---------------------------------------------------------

    @property
    def max_attempts(self) -> int:
        """Total attempts per cell (first try + retries)."""
        return (2 if self.retries is None else self.retries) + 1

    def supervisor(self):
        """The :class:`SupervisorConfig` equivalent (supervised kind)."""
        from .supervised import SupervisorConfig

        return SupervisorConfig(
            cell_timeout_s=self.cell_timeout_s,
            max_attempts=self.max_attempts,
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
            seed=self.seed,
            allow_partial=self.allow_partial,
        )

    def with_(self, **changes: Any) -> "ExecutorSpec":
        """A copy with fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def bind_address(self) -> Tuple[str, int]:
        host, _, port = self.bind.rpartition(":")
        if not host or not port.isdigit():
            raise ExperimentError(
                f"bad distributed bind address {self.bind!r} "
                f"(expected host:port)"
            )
        return host, int(port)

    # -- construction ----------------------------------------------------------

    @classmethod
    def normalize(
        cls, value: Union["ExecutorSpec", str, Dict[str, Any]]
    ) -> "ExecutorSpec":
        """Coerce any accepted spelling — spec, compact string, JSON dict
        (the campaign server's ``"executor"`` key) — into a spec."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise ExperimentError(
            f"cannot interpret {value!r} as an executor (expected an "
            f"ExecutorSpec, a string like 'pool:4', or a JSON object)"
        )

    @classmethod
    def parse(cls, text: str) -> "ExecutorSpec":
        """Parse the compact CLI form: ``kind[:key=value,...]``.

        ``pool:4`` is shorthand for ``pool:jobs=4``.  Keys: ``jobs``,
        ``timeout`` (cell watchdog seconds), ``retries``, ``seed``,
        ``partial``, ``bind`` (host:port), ``lease`` (seconds),
        ``local`` (loopback worker subprocesses).
        """
        text = text.strip()
        kind, _, rest = text.partition(":")
        kind = kind.strip()
        if kind not in EXECUTOR_KINDS:
            raise ExperimentError(
                f"unknown executor kind {kind!r}; know "
                f"{', '.join(EXECUTOR_KINDS)} "
                f"(e.g. 'pool:4', 'distributed:bind=127.0.0.1:8400,local=2')"
            )
        fields: Dict[str, Any] = {"kind": kind}
        rest = rest.strip()
        if rest and "=" not in rest and "," not in rest:
            # Bare count shorthand: pool:4 / supervised:2.
            fields["jobs"] = _coerce("jobs", rest)
            rest = ""
        for part in filter(None, (p.strip() for p in rest.split(","))):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or key not in _PARSE_ALIASES:
                raise ExperimentError(
                    f"bad executor option {part!r}; know "
                    f"{', '.join(sorted(set(_PARSE_ALIASES)))}"
                )
            field = _PARSE_ALIASES[key]
            fields[field] = _coerce(field, value.strip())
        return cls(**fields)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutorSpec":
        """Build from a JSON object (unknown keys rejected loudly)."""
        known = {f.name for f in dataclasses.fields(cls)}
        bad = set(data) - known
        if bad:
            raise ExperimentError(
                f"unknown executor fields {sorted(bad)}; know "
                f"{sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_legacy(
        cls, jobs: int = 1, supervise=None
    ) -> "ExecutorSpec":
        """Map the pre-spec ``(jobs, supervise)`` spelling onto a spec.

        This is the deprecation shim behind ``Campaign.run(jobs=...,
        supervise=...)`` and ``run_scenarios(jobs=..., supervise=...)``:
        exactly the executor those arguments always selected, now as a
        value.
        """
        if supervise is not None:
            return cls(
                kind="supervised",
                jobs=max(1, jobs),
                cell_timeout_s=supervise.cell_timeout_s,
                retries=supervise.max_attempts - 1,
                backoff_base_s=supervise.backoff_base_s,
                backoff_cap_s=supervise.backoff_cap_s,
                seed=supervise.seed,
                allow_partial=supervise.allow_partial,
            )
        if jobs > 1:
            return cls(kind="pool", jobs=jobs)
        return cls(kind="serial")

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view (defaults omitted for compact specs)."""
        out: Dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            if field.name == "kind":
                continue
            value = getattr(self, field.name)
            if value != field.default:
                out[field.name] = value
        return out

    def describe(self) -> str:
        parts = [self.kind]
        if self.kind == "pool" or (self.kind == "supervised" and self.jobs > 1):
            parts.append(f"jobs={self.jobs}")
        if self.kind in ("supervised", "distributed"):
            parts.append(f"retries={self.max_attempts - 1}")
            if self.cell_timeout_s is not None:
                parts.append(f"timeout={self.cell_timeout_s:g}s")
        if self.kind == "distributed":
            parts.append(f"lease={self.lease_timeout_s:g}s")
            if self.local_workers:
                parts.append(f"local={self.local_workers}")
        return " ".join(parts)


def _coerce(field: str, value: str) -> Any:
    try:
        if field in _INT_FIELDS:
            return int(value)
        if field in _FLOAT_FIELDS:
            return float(value)
        if field in _BOOL_FIELDS:
            return value.lower() in ("1", "true", "yes", "on")
    except ValueError:
        raise ExperimentError(
            f"bad value {value!r} for executor option {field!r}"
        ) from None
    return value


#: The ambient executor (see :func:`use_executor`): an ExecutorSpec or a
#: live CampaignExecutor instance.
_ACTIVE_EXECUTOR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_executor", default=None
)


@contextlib.contextmanager
def use_executor(executor):
    """Route every campaign execution in this context through
    ``executor`` — an :class:`ExecutorSpec`, its compact string form, or
    a live :class:`~repro.exec.base.CampaignExecutor`.

    When given a spec (or string) the executor backend is instantiated
    once and closed on exit, so a distributed spec keeps one coordinator
    (and its spawned local workers) alive across every experiment the
    context runs — this is what the CLI's ``--executor`` flag wraps the
    whole command in.  A live instance is used as-is and left open.
    """
    from .base import CampaignExecutor, get_executor

    created = None
    if executor is not None and not isinstance(executor, CampaignExecutor):
        executor = created = get_executor(ExecutorSpec.normalize(executor))
    token = _ACTIVE_EXECUTOR.set(executor)
    try:
        yield executor
    finally:
        _ACTIVE_EXECUTOR.reset(token)
        if created is not None:
            created.close()


def active_executor():
    """The executor installed by :func:`use_executor`, or ``None``."""
    return _ACTIVE_EXECUTOR.get()
