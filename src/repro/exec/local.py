"""In-process executors: serial and process-pool.

Extracted verbatim from the original ``run_scenarios`` body so the two
oldest execution paths keep their exact observable behaviour — the
serial path reports progress *before* each cell runs (so a progress bar
shows the cell in flight), the pool path reports as ordered results
arrive; both collect results in input order and let cell exceptions
propagate (fault tolerance is the supervised/distributed executors'
job).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from .base import CampaignExecutor, CellFailure, ExecutionHooks

__all__ = ["SerialExecutor", "PoolExecutor", "execute_scenario"]


def execute_scenario(scenario):
    """Top-level (picklable) worker body: run one scenario."""
    return scenario.run()


class SerialExecutor(CampaignExecutor):
    """One cell at a time, in-process — always safe, always available."""

    kind = "serial"

    def execute(
        self,
        scenarios: Sequence,
        hooks: Optional[ExecutionHooks] = None,
    ) -> Tuple[List, List[CellFailure]]:
        hooks = hooks or ExecutionHooks()
        total = len(scenarios)
        results = []
        for i, sc in enumerate(scenarios):
            if hooks.progress is not None:
                hooks.progress(i, total, sc)
            run = execute_scenario(sc)
            if hooks.experiment is not None:
                run.experiment = hooks.experiment
            results.append(run)
            if hooks.store is not None:
                hooks.store.append(run)
            if hooks.manifest is not None:
                hooks.manifest.record_done(hooks.manifest_key(sc))
            hooks.emit({
                "type": "cell",
                "index": i,
                "total": total,
                "source": "sim",
                "scenario": sc.describe(),
            })
        return results, []


class PoolExecutor(CampaignExecutor):
    """Process-pool fan-out: ``jobs`` workers, results in input order.

    ``map(chunksize=1)`` keeps the work queue balanced when run lengths
    vary wildly (lifetime runs); because every scenario is fully
    deterministic, the collected results are bit-identical to serial
    execution.
    """

    kind = "pool"

    def __init__(self, jobs: int = 2):
        self.jobs = max(1, jobs)

    def execute(
        self,
        scenarios: Sequence,
        hooks: Optional[ExecutionHooks] = None,
    ) -> Tuple[List, List[CellFailure]]:
        hooks = hooks or ExecutionHooks()
        if self.jobs <= 1 or len(scenarios) <= 1:
            return SerialExecutor().execute(scenarios, hooks)
        total = len(scenarios)
        results = []
        workers = min(self.jobs, total)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves input order; chunksize=1 keeps the work
            # queue balanced when run lengths vary wildly.
            for i, run in enumerate(
                pool.map(execute_scenario, scenarios, chunksize=1)
            ):
                if hooks.progress is not None:
                    hooks.progress(i, total, scenarios[i])
                if hooks.experiment is not None:
                    run.experiment = hooks.experiment
                results.append(run)
                if hooks.store is not None:
                    hooks.store.append(run)
                if hooks.manifest is not None:
                    hooks.manifest.record_done(hooks.manifest_key(scenarios[i]))
                hooks.emit({
                    "type": "cell",
                    "index": i,
                    "total": total,
                    "source": "sim",
                    "scenario": scenarios[i].describe(),
                })
        return results, []
