"""Workload substrate: packets, sources, buffers."""

from .buffer import PacketBuffer
from .packet import Packet
from .sources import CbrSource, OnOffSource, PoissonSource, TrafficSource, make_source

__all__ = [
    "Packet",
    "PacketBuffer",
    "TrafficSource",
    "PoissonSource",
    "CbrSource",
    "OnOffSource",
    "make_source",
]
