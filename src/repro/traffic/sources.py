"""Traffic sources.

§IV-A: "Each sensor node is a Poisson source, the generated packet follows
a Poisson arrival."  :class:`PoissonSource` is the paper's model; CBR and
on/off sources are provided for sensitivity studies (the paper's future
work calls out "specific data types").

Sources are driven by the simulation kernel: each schedules its own next
arrival and hands the packet to a sink callable (normally the node's
buffer + policy observer).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..sim import Simulator
from .packet import Packet

__all__ = ["TrafficSource", "PoissonSource", "CbrSource", "OnOffSource", "make_source"]

PacketSink = Callable[[Packet], None]


class TrafficSource(ABC):
    """Base class: generates packets into a sink until stopped."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        packet_bits: int,
        sink: PacketSink,
    ) -> None:
        if packet_bits <= 0:
            raise ConfigError("packet_bits must be > 0")
        self.sim = sim
        self.node_id = node_id
        self.packet_bits = packet_bits
        self.sink = sink
        self.generated = 0
        self._running = False
        self._next_handle = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin generating (schedules the first arrival)."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating (e.g. the node died)."""
        self._running = False
        if self._next_handle is not None:
            self._next_handle.cancel()
            self._next_handle = None

    @property
    def is_running(self) -> bool:
        """True while the source is live."""
        return self._running

    # -- engine ------------------------------------------------------------------

    def _schedule_next(self) -> None:
        delay = self.next_interarrival_s()
        # Strict re-arm: a sub-resolution gap (tiny exponential draw, or a
        # CBR interval at large sim times) must still advance the clock.
        self._next_handle = self.sim.call_in_strict(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        packet = Packet(self.node_id, self.sim.now, self.packet_bits)
        self.generated += 1
        self.sink(packet)
        self._schedule_next()

    @abstractmethod
    def next_interarrival_s(self) -> float:
        """Draw the next inter-arrival gap."""


class PoissonSource(TrafficSource):
    """Homogeneous Poisson arrivals at ``rate_pps`` packets/second."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        packet_bits: int,
        sink: PacketSink,
        rate_pps: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sim, node_id, packet_bits, sink)
        if rate_pps <= 0:
            raise ConfigError("rate must be > 0")
        self.rate_pps = rate_pps
        self._rng = rng

    def next_interarrival_s(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate_pps))


class CbrSource(TrafficSource):
    """Constant bit rate: fixed inter-arrival 1/rate."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        packet_bits: int,
        sink: PacketSink,
        rate_pps: float,
    ) -> None:
        super().__init__(sim, node_id, packet_bits, sink)
        if rate_pps <= 0:
            raise ConfigError("rate must be > 0")
        self.interval_s = 1.0 / rate_pps

    def next_interarrival_s(self) -> float:
        return self.interval_s


class OnOffSource(TrafficSource):
    """Bursty source: exponential ON periods of Poisson traffic, silent OFF.

    The mean rate over time equals ``rate_pps`` (the ON-period rate is
    scaled up by the duty cycle), so load sweeps stay comparable.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        packet_bits: int,
        sink: PacketSink,
        rate_pps: float,
        on_s: float,
        off_s: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(sim, node_id, packet_bits, sink)
        if rate_pps <= 0 or on_s <= 0 or off_s < 0:
            raise ConfigError("invalid on/off source parameters")
        duty = on_s / (on_s + off_s)
        self.on_rate_pps = rate_pps / duty
        self.on_s = on_s
        self.off_s = off_s
        self._rng = rng
        self._on_until = 0.0

    def next_interarrival_s(self) -> float:
        rng = self._rng
        gap = float(rng.exponential(1.0 / self.on_rate_pps))
        t = self.sim.now
        if t + gap <= self._on_until:
            return gap
        # Crossed into (one or more) OFF periods: push the arrival out.
        extra = 0.0
        while t + gap + extra > self._on_until:
            extra += float(rng.exponential(self.off_s)) if self.off_s > 0 else 0.0
            self._on_until = t + gap + extra + float(rng.exponential(self.on_s))
            break
        return gap + extra


def make_source(
    model: str,
    sim: Simulator,
    node_id: int,
    packet_bits: int,
    sink: PacketSink,
    rate_pps: float,
    rng: np.random.Generator,
    on_s: float = 1.0,
    off_s: float = 4.0,
) -> TrafficSource:
    """Factory keyed on ``TrafficConfig.source_model``."""
    if model == "poisson":
        return PoissonSource(sim, node_id, packet_bits, sink, rate_pps, rng)
    if model == "cbr":
        return CbrSource(sim, node_id, packet_bits, sink, rate_pps)
    if model == "onoff":
        return OnOffSource(
            sim, node_id, packet_bits, sink, rate_pps, on_s, off_s, rng
        )
    raise ConfigError(f"unknown source model {model!r}")
