"""Finite FIFO packet buffer with overflow accounting.

Table II: "Buffer Size: 50".  The paper's Scheme 2 analysis hinges on what
happens when gating keeps the queue from draining: "packet overflow and
long queuing delay ... loss of gathered data".  The buffer therefore keeps
precise drop statistics, and the fairness experiment (Fig. 12) uses an
effectively infinite capacity as the paper does ("we have set the buffer
size to be substantially large enough").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..errors import BufferOverflowError
from .packet import Packet

__all__ = ["PacketBuffer"]


class PacketBuffer:
    """Bounded FIFO queue of packets.

    Parameters
    ----------
    capacity:
        Maximum queue length in packets; ``None`` = unbounded.
    strict:
        If True, overflow raises :class:`BufferOverflowError` instead of
        dropping (used by tests to catch unexpected overflow).
    """

    __slots__ = ("capacity", "strict", "_queue", "arrived", "dropped", "served")

    def __init__(self, capacity: Optional[int] = 50, strict: bool = False) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.capacity = capacity
        self.strict = strict
        self._queue: Deque[Packet] = deque()
        #: Total packets offered (accepted + dropped).
        self.arrived = 0
        #: Packets lost to overflow.
        self.dropped = 0
        #: Packets removed for transmission.
        self.served = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def is_full(self) -> bool:
        """True when at capacity."""
        return self.capacity is not None and len(self._queue) >= self.capacity

    def offer(self, packet: Packet) -> bool:
        """Admit a packet; returns False (and counts a drop) on overflow."""
        self.arrived += 1
        if self.is_full:
            self.dropped += 1
            if self.strict:
                raise BufferOverflowError(
                    f"buffer full ({self.capacity}) dropping {packet!r}"
                )
            return False
        self._queue.append(packet)
        return True

    def peek(self) -> Optional[Packet]:
        """Head-of-line packet without removing it."""
        return self._queue[0] if self._queue else None

    def take(self, n: int) -> List[Packet]:
        """Remove and return up to ``n`` packets from the head (FIFO)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        out: List[Packet] = []
        queue = self._queue
        while queue and len(out) < n:
            out.append(queue.popleft())
        self.served += len(out)
        return out

    def requeue_front(self, packets: List[Packet]) -> None:
        """Put packets back at the head, preserving their original order.

        Used when a burst aborts on a collision tone: the unsent/corrupted
        packets return to the front of the queue for the retry (they are
        the oldest data and FIFO order must hold).  Requeued packets do not
        recount as arrivals; capacity may be transiently exceeded by design
        (they were already admitted once).
        """
        for packet in reversed(packets):
            self._queue.appendleft(packet)
        self.served -= len(packets)

    def head_age_s(self, now: float) -> float:
        """Age of the head-of-line packet; 0 when empty."""
        head = self.peek()
        return 0.0 if head is None else head.age_s(now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<PacketBuffer {len(self._queue)}/{cap} dropped={self.dropped}>"
