"""The runnable sensor network: LEACH rounds over the CAEM stack.

:class:`SensorNetwork` builds everything from a
:class:`~repro.config.NetworkConfig` and drives the paper's operational
loop:

* at every round boundary (20 s): tear down the previous clusters, run the
  LEACH election among alive nodes, flip the elected nodes into heads,
  build one :class:`~repro.channel.medium.DataChannel` +
  :class:`~repro.mac.tone.ToneBroadcaster` per cluster (orthogonal
  frequencies → no inter-cluster interference), draw a fresh
  :class:`~repro.channel.link.Link` for every member→head pair, and attach
  the sensor MACs;
* when a head dies mid-round its members are detached (they lose the tone
  signal, power down, and wait for the next round — §III-B);
* meters are settled on a fixed cadence so battery deaths are detected
  promptly and metric snapshots are exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..channel import Link, LinkBudget
from ..cluster import LeachElection, Topology
from ..config import NetworkConfig
from ..energy import RadioEnergyModel
from ..errors import SimulationError
from ..mac import ClusterContext, ToneChannelSpec
from ..phy import AbicmTable
from ..rng import RngRegistry
from ..sim import Simulator, Tracer
from .node import NodeRole, SensorNode
from .stats import NetworkStats

__all__ = ["SensorNetwork"]


class SensorNetwork:
    """A complete, runnable CAEM/LEACH sensor network."""

    def __init__(self, cfg: NetworkConfig, tracer: Optional[Tracer] = None) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        self.tracer = tracer
        self.rngs = RngRegistry(cfg.seed)
        self.stats = NetworkStats()

        # Shared substrate.
        self.abicm = AbicmTable.from_config(cfg.phy)
        self.model = RadioEnergyModel(cfg.energy)
        self.tone_spec = ToneChannelSpec(cfg.tone)
        self.budget = LinkBudget.from_config(cfg.channel)
        if cfg.placement == "grid":
            self.topology = Topology.grid(cfg.n_nodes, cfg.field_size_m)
        else:
            self.topology = Topology.uniform(
                cfg.n_nodes, cfg.field_size_m, self.rngs.stream("topology")
            )
        self.election = LeachElection(cfg.leach, self.rngs.stream("leach"))

        # Nodes.
        self.nodes: List[SensorNode] = [
            SensorNode(
                self.sim,
                i,
                cfg,
                self.abicm,
                self.model,
                self.tone_spec,
                self.rngs.stream(f"node/{i}"),
                on_death=self._on_node_death,
                on_local_delivery=self.stats.on_delivered_local,
                tracer=tracer,
            )
            for i in range(cfg.n_nodes)
        ]

        self.round_index = 0
        #: head id -> list of member nodes (current round).
        self._members_of: Dict[int, List[SensorNode]] = {}
        self._round_handle = None
        self._settle_handle = None
        #: Cadence for settling meters (death detection granularity).
        self.settle_interval_s = 1.0
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start sources, the round driver, and the settle cadence."""
        if self._started:
            raise SimulationError("network already started")
        self._started = True
        for node in self.nodes:
            node.start()
        self._start_round()
        self._settle_handle = self.sim.call_in(self.settle_interval_s, self._settle_tick)

    def run_until(self, t: float) -> None:
        """Advance the simulation (starting it first if needed)."""
        if not self._started:
            self.start()
        self.sim.run_until(t)

    # -- round driver ------------------------------------------------------------------

    def _start_round(self) -> None:
        self._teardown_round()
        alive = [n for n in self.nodes if n.alive]
        if alive:
            self._form_clusters(alive)
            self.round_index += 1
        # Keep the driver running even with nobody alive: metrics samplers
        # may still want the tail of the time series.
        self._round_handle = self.sim.call_in(
            self.cfg.leach.round_duration_s, self._start_round
        )

    def _teardown_round(self) -> None:
        for node in self.nodes:
            if node.mac.is_attached:
                node.mac.detach()
            if node.role is NodeRole.HEAD:
                node.become_sensor()
        self._members_of.clear()

    def _form_clusters(self, alive: List[SensorNode]) -> None:
        alive_ids = [n.id for n in alive]
        assignment = self.election.form_clusters(
            self.round_index, alive_ids, self.topology.nearest
        )
        if self.tracer is not None:
            self.tracer.annotate(
                self.sim.now, "leach.round",
                index=self.round_index, heads=list(assignment.heads),
            )
        contexts: Dict[int, ClusterContext] = {}
        for head_id in assignment.heads:
            head = self.nodes[head_id]
            contexts[head_id] = head.become_head(
                self.rngs.stream(f"per/{head_id}"),
                on_delivered=self.stats.on_delivered,
                on_lost=self.stats.on_lost,
            )
            self._members_of[head_id] = []
        for node in alive:
            head_id = assignment.membership[node.id]
            if head_id == node.id:
                continue
            link = Link(
                self.topology.distance(node.id, head_id),
                self.budget,
                self.cfg.channel,
                self.rngs.stream(f"link/r{self.round_index}/{node.id}->{head_id}"),
                name=f"{node.id}->{head_id}",
                start_time_s=self.sim.now,
            )
            node.mac.attach(contexts[head_id], link)
            self._members_of[head_id].append(node)

    # -- death handling -----------------------------------------------------------------

    def _on_node_death(self, node: SensorNode) -> None:
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, "node.death", node=node.id)
        # A dying head strands its cluster until the next round (§III-B).
        members = self._members_of.pop(node.id, None)
        if members:
            for member in members:
                if member.mac.is_attached:
                    member.mac.detach()

    # -- settle cadence ---------------------------------------------------------------------

    def _settle_tick(self) -> None:
        for node in self.nodes:
            if node.alive:
                node.settle()
        self._settle_handle = self.sim.call_in(
            self.settle_interval_s, self._settle_tick
        )

    # -- reporting ----------------------------------------------------------------------------

    @property
    def alive_count(self) -> int:
        """Nodes with battery remaining."""
        return sum(1 for n in self.nodes if n.alive)

    @property
    def dead_fraction(self) -> float:
        """Fraction of nodes exhausted."""
        return 1.0 - self.alive_count / len(self.nodes)

    @property
    def is_dead(self) -> bool:
        """The paper's network-death rule: the dead fraction *exceeds* the
        threshold (same convention as metrics.lifetime.network_lifetime_s,
        so a run stopped at death always yields a measurable lifetime)."""
        n = len(self.nodes)
        dead = n - self.alive_count
        if self.cfg.dead_fraction >= 1.0:
            return dead >= n
        import math

        return dead >= math.floor(self.cfg.dead_fraction * n) + 1

    def settle_all(self) -> None:
        """Settle every meter now (exact battery levels for snapshots)."""
        for node in self.nodes:
            node.settle()

    def mean_remaining_j(self) -> float:
        """Average battery level across *all* nodes (dead count as 0)."""
        self.settle_all()
        return sum(n.battery.level_j for n in self.nodes) / len(self.nodes)

    def total_consumed_j(self) -> float:
        """Total energy drawn across the network."""
        self.settle_all()
        return sum(n.battery.drawn_j for n in self.nodes)

    def generated_packets(self) -> int:
        """Total packets produced by all sources."""
        return sum(n.source.generated for n in self.nodes)

    def dropped_overflow(self) -> int:
        """Packets lost to buffer overflow."""
        return sum(n.buffer.dropped for n in self.nodes)

    def dropped_retry(self) -> int:
        """Packets shed after the MAC retry budget."""
        return sum(n.mac.stats.packets_dropped_retry for n in self.nodes)

    def queue_lengths(self) -> List[int]:
        """Current queue length per alive node (fairness metric input)."""
        return [len(n.buffer) for n in self.nodes if n.alive]

    def energy_breakdown(self) -> Dict[str, float]:
        """Network-wide per-cause energy ledger."""
        self.settle_all()
        out: Dict[str, float] = {}
        for node in self.nodes:
            for cause, joules in node.meter.by_cause.items():
                out[cause] = out.get(cause, 0.0) + joules
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SensorNetwork n={len(self.nodes)} alive={self.alive_count} "
            f"t={self.sim.now:.1f}s round={self.round_index} "
            f"protocol={self.cfg.protocol.value}>"
        )
