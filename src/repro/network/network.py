"""The runnable sensor network: LEACH rounds over the CAEM stack.

:class:`SensorNetwork` builds everything from a
:class:`~repro.config.NetworkConfig` and drives the paper's operational
loop:

* at every round boundary (20 s): tear down the previous clusters, run the
  LEACH election among alive nodes, flip the elected nodes into heads,
  build one :class:`~repro.channel.medium.DataChannel` +
  :class:`~repro.mac.tone.ToneBroadcaster` per cluster (orthogonal
  frequencies → no inter-cluster interference), draw a fresh
  :class:`~repro.channel.link.Link` for every member→head pair, and attach
  the sensor MACs;
* when a head dies mid-round its members are detached (they lose the tone
  signal, power down, and wait for the next round — §III-B);
* meters are settled on a fixed cadence so battery deaths are detected
  promptly and metric snapshots are exact.

With the uplink tier enabled (``cfg.routing.mode`` of ``"direct"`` or
``"multihop"``) the network additionally owns the :class:`repro.routing`
stack: a placed :class:`~repro.routing.sink.Sink`, one shared long-haul
:class:`~repro.channel.medium.DataChannel` (orthogonal to every cluster
channel), and a per-round :class:`~repro.routing.uplink.UplinkRelay` per
head wired along the :func:`~repro.routing.policies.plan_routes` next-hop
table.  The default ``"local"`` mode builds none of this and reproduces
the paper's head-is-the-sink terminus bit-for-bit.

With dynamics enabled (any :class:`~repro.config.DynamicsConfig` knob
non-zero) the network also owns a :class:`repro.dynamics.EventTimeline`
that injects adversity mid-run: churn failures reuse the head-death
machinery (members detach, relays strand their cargo, the failed node's
queue is orphaned), recoveries re-enter at the next LEACH round, and
shadowing regime shifts move every active link's mean SNR at once.  The
all-default block builds none of this and stays byte-identical to the
static network.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..channel import Link, LinkBudget
from ..channel.medium import DataChannel
from ..cluster import LeachElection, Topology
from ..config import NetworkConfig
from ..dynamics import EventTimeline
from ..energy import RadioEnergyModel
from ..errors import SimulationError
from ..mac import ClusterContext, ToneChannelSpec
from ..phy import AbicmTable
from ..rng import RngRegistry
from ..routing import Sink, UplinkRelay, plan_routes
from ..sim import Simulator, Tracer
from ..topology import GridNearest
from ..traffic.packet import Packet
from .node import NodeRole, SensorNode
from .stats import NetworkStats

__all__ = ["SensorNetwork"]


class SensorNetwork:
    """A complete, runnable CAEM/LEACH sensor network."""

    def __init__(self, cfg: NetworkConfig, tracer: Optional[Tracer] = None) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        self.tracer = tracer
        self.rngs = RngRegistry(cfg.seed)
        self.stats = NetworkStats(
            track_sources=cfg.dynamics.enabled,
            max_delay_samples=cfg.scale.max_delay_samples,
            reservoir_rng=(
                self.rngs.stream("stats/reservoir")
                if cfg.scale.max_delay_samples is not None
                else None
            ),
        )

        # Shared substrate.
        self.abicm = AbicmTable.from_config(cfg.phy)
        self.model = RadioEnergyModel(
            cfg.energy, uplink_tx_power_w=cfg.routing.uplink_tx_power_w
        )
        self.tone_spec = ToneChannelSpec(cfg.tone)
        self.budget = LinkBudget.from_config(cfg.channel)
        #: Long-haul budget: same path loss and noise floor, boosted TX.
        self.uplink_budget = LinkBudget(
            self.budget.pathloss,
            cfg.routing.uplink_tx_power_w,
            cfg.channel.noise_floor_dbm,
        )
        if cfg.placement == "grid":
            self.topology = Topology.grid(cfg.n_nodes, cfg.field_size_m)
        else:
            self.topology = Topology.uniform(
                cfg.n_nodes, cfg.field_size_m, self.rngs.stream("topology")
            )
        self.election = LeachElection(cfg.leach, self.rngs.stream("leach"))
        # Nearest-head resolution: the spatial grid index answers exactly
        # what the brute scan answers (ties included) but in ~O(1) per
        # sensor, which is what keeps 1000+ node rounds affordable.
        if cfg.scale.spatial_index == "grid":
            self._nearest = GridNearest(self.topology, cfg.scale.grid_min_heads)
        else:
            self._nearest = self.topology.nearest

        # Uplink tier (None while routing.mode == "local").
        self.sink: Optional[Sink] = None
        self.uplink_channel: Optional[DataChannel] = None
        if cfg.routing.enabled:
            self.topology.place_sink(cfg.routing.sink_position)
            self.sink = Sink(
                self.topology.sink_position,
                on_delivered=self.stats.on_sink_delivered,
            )
            self.uplink_channel = DataChannel(self.sim, name="uplink")

        # Dynamics (repro.dynamics): per-node construction overrides are
        # drawn up-front from dedicated streams, in node-id order, so
        # they are deterministic and never touch the static streams.
        # With dynamics disabled nothing is drawn and every override is
        # None — construction is bit-identical to the static network.
        energy_overrides: List[Optional[float]] = [None] * cfg.n_nodes
        source_overrides: List[Optional[str]] = [None] * cfg.n_nodes
        if cfg.dynamics.enabled:
            if cfg.dynamics.battery_jitter > 0:
                j = cfg.dynamics.battery_jitter
                factors = self.rngs.stream("dynamics/battery").uniform(
                    1.0 - j, 1.0 + j, cfg.n_nodes
                )
                base_j = cfg.energy.initial_energy_j
                energy_overrides = [base_j * float(f) for f in factors]
            if cfg.dynamics.bursty_fraction > 0:
                picks = self.rngs.stream("dynamics/traffic").random(cfg.n_nodes)
                source_overrides = [
                    "onoff" if float(u) < cfg.dynamics.bursty_fraction else None
                    for u in picks
                ]

        # Nodes.
        self.nodes: List[SensorNode] = [
            SensorNode(
                self.sim,
                i,
                cfg,
                self.abicm,
                self.model,
                self.tone_spec,
                self.rngs.stream(f"node/{i}"),
                on_death=self._on_node_death,
                on_head_ingress=self._on_head_ingress,
                tracer=tracer,
                initial_energy_j=energy_overrides[i],
                source_model=source_overrides[i],
            )
            for i in range(cfg.n_nodes)
        ]

        #: Current network-wide shadowing regime offset, dB (dynamics).
        self._regime_offset_db = 0.0
        #: The dynamics injector (None while every mechanism is off).
        self.timeline: Optional[EventTimeline] = None
        if cfg.dynamics.enabled:
            self.timeline = EventTimeline(
                self.sim,
                cfg.dynamics,
                self.rngs,
                cfg.n_nodes,
                fail=self._fail_node,
                recover=self._recover_node,
                regime_shift=self._apply_regime_shift,
            )

        self.round_index = 0
        #: Scale-tier link pools (see ScaleConfig.link_pool): a member's
        #: Link (and its block-normal cache) is recycled across rounds via
        #: Link.rebind instead of reallocated — bit-identical because each
        #: round's dedicated stream is rebound into the recycled cache.
        #: Keyed by member id (cluster tier) / head id (uplink tier).
        self._link_pool: Dict[int, Link] = {}
        self._uplink_link_pool: Dict[int, Link] = {}
        #: head id -> list of member nodes (current round).
        self._members_of: Dict[int, List[SensorNode]] = {}
        #: head id -> this round's uplink relay (routing enabled only).
        self._relays: Dict[int, UplinkRelay] = {}
        self._round_handle = None
        self._settle_handle = None
        #: Cadence for settling meters (death detection granularity).
        self.settle_interval_s = 1.0
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start sources, the round driver, and the settle cadence."""
        if self._started:
            raise SimulationError("network already started")
        self._started = True
        for node in self.nodes:
            node.start()
        if self.timeline is not None:
            self.timeline.start()
        self._start_round()
        self._settle_handle = self.sim.call_in_strict(
            self.settle_interval_s, self._settle_tick
        )

    def run_until(self, t: float) -> None:
        """Advance the simulation (starting it first if needed)."""
        if not self._started:
            self.start()
        self.sim.run_until(t)

    # -- round driver ------------------------------------------------------------------

    def _start_round(self) -> None:
        self._teardown_round()
        # Only operational nodes cluster: battery-dead nodes are gone for
        # good, churn-failed nodes sit this round out (is_up == alive
        # while dynamics are disabled).
        alive = [n for n in self.nodes if n.is_up]
        if alive:
            self._form_clusters(alive)
            self.round_index += 1
        # Keep the driver running even with nobody alive: metrics samplers
        # may still want the tail of the time series.  Strict re-arm: the
        # driver must never pin the clock at one instant.
        self._round_handle = self.sim.call_in_strict(
            self.cfg.leach.round_duration_s, self._start_round
        )

    def _teardown_round(self) -> None:
        # Stop relays first: uplink bursts abort on the ledger and every
        # undelivered packet returns to its head's own buffer (it re-enters
        # as ordinary traffic next round, keeping its birth time; its hop
        # count restarts — see the repro.routing.uplink module docstring)
        # — or is stranded if the head is no longer alive.
        for head_id, relay in self._relays.items():
            leftovers = relay.stop()
            if not leftovers:
                continue
            node = self.nodes[head_id]
            if node.is_up:
                for packet, _hops in leftovers:
                    node.buffer.offer(packet)  # overflow drops are counted
            else:
                self.stats.on_uplink_stranded(len(leftovers))
        self._relays.clear()
        for node in self.nodes:
            if node.mac.is_attached:
                node.mac.detach()
            if node.role is NodeRole.HEAD:
                node.become_sensor()
        self._members_of.clear()

    def _form_clusters(self, alive: List[SensorNode]) -> None:
        alive_ids = [n.id for n in alive]
        if isinstance(self._nearest, GridNearest):
            # New round, new head set: drop the cached per-round index.
            self._nearest.invalidate()
        assignment = self.election.form_clusters(
            self.round_index, alive_ids, self._nearest
        )
        if self.tracer is not None:
            self.tracer.annotate(
                self.sim.now, "leach.round",
                index=self.round_index, heads=list(assignment.heads),
            )
        # Relays must exist before become_head(): electing a head flushes
        # its backlog through the ingress path immediately.
        if self.cfg.routing.enabled:
            self._build_relays(list(assignment.heads))
        contexts: Dict[int, ClusterContext] = {}
        for head_id in assignment.heads:
            head = self.nodes[head_id]
            contexts[head_id] = head.become_head(
                self.rngs.stream(f"per/{head_id}"),
                on_delivered=self._cluster_delivery_sink(head_id),
                on_lost=self.stats.on_lost,
            )
            self._members_of[head_id] = []
        pool = self._link_pool if self.cfg.scale.link_pool else None
        for node in alive:
            head_id = assignment.membership[node.id]
            if head_id == node.id:
                continue
            link = self._lease_link(
                pool,
                node.id,
                self.topology.distance(node.id, head_id),
                self.budget,
                f"link/r{self.round_index}/{node.id}->{head_id}",
                f"{node.id}->{head_id}",
            )
            node.mac.attach(contexts[head_id], link)
            self._members_of[head_id].append(node)

    def _lease_link(
        self,
        pool: Optional[Dict[int, Link]],
        key: int,
        distance: float,
        budget,
        stream_name: str,
        name: str,
    ) -> Link:
        """One round's Link for an endpoint pair: pooled rebind or fresh.

        Shared by the cluster and uplink tiers so the leasing policy —
        uncached per-round stream derivation (the registry stays bounded
        at scale), pool recycle via :meth:`Link.rebind`, and regime-offset
        application for links born under a shifted regime — lives in one
        place.
        """
        stream = self.rngs.derive(stream_name)
        link = pool.get(key) if pool is not None else None
        now = self.sim.now
        if link is None:
            link = Link(
                distance,
                budget,
                self.cfg.channel,
                stream,
                name=name,
                start_time_s=now,
            )
            if pool is not None:
                pool[key] = link
        else:
            link.rebind(distance, budget, stream, name, now)
        if self._regime_offset_db != 0.0:
            link.shift_mean_snr_db(self._regime_offset_db)
        return link

    # -- uplink tier -------------------------------------------------------------------

    def _build_relays(self, heads: List[int]) -> None:
        """Construct and wire this round's head→sink relay stack."""
        routes = plan_routes(self.cfg.routing.mode, heads, self.topology)
        for head_id in heads:
            self._relays[head_id] = UplinkRelay(
                self.sim,
                head_id,
                self.nodes[head_id].meter,
                self.uplink_channel,
                self.abicm,
                self.cfg.phy,
                self.cfg.routing,
                self.rngs.stream(f"uplink/mac/{head_id}"),
                self.stats,
                tracer=self.tracer,
            )
        pool = self._uplink_link_pool if self.cfg.scale.link_pool else None
        for head_id in heads:
            next_id = routes[head_id]
            if next_id is None:
                distance = self.topology.sink_distance(head_id)
                far_end = "sink"
            else:
                distance = self.topology.distance(head_id, next_id)
                far_end = str(next_id)
            link = self._lease_link(
                pool,
                head_id,
                distance,
                self.uplink_budget,
                f"uplink/link/r{self.round_index}/{head_id}->{far_end}",
                f"uplink {head_id}->{far_end}",
            )
            self._relays[head_id].wire(
                link,
                None if next_id is None else self._relays[next_id],
                self.sink,
            )
        if self.tracer is not None:
            self.tracer.annotate(
                self.sim.now, "uplink.routes",
                round=self.round_index,
                routes={h: routes[h] for h in heads},
            )

    def _cluster_delivery_sink(self, head_id: int):
        """Where a head's cleanly received member bursts go.

        Local routing: straight to the stats ledger (the paper's sink).
        Uplink tier: counted as a cluster-hop delivery, then queued on the
        head's relay with one radio hop already traversed.
        """
        if not self.cfg.routing.enabled:
            return self.stats.on_delivered
        relay = self._relays[head_id]

        def deliver(packets: List[Packet], sender_id: int, now: float) -> None:
            self.stats.on_cluster_delivered(packets, sender_id, now)
            relay.offer([(p, 1) for p in packets])

        return deliver

    def _on_head_ingress(
        self, packets: List[Packet], node_id: int, now: float
    ) -> None:
        """A head aggregated its own data (zero radio cost)."""
        if not self.cfg.routing.enabled:
            self.stats.on_delivered_local(packets, node_id, now)
            return
        relay = self._relays.get(node_id)
        if relay is None:  # pragma: no cover - defensive
            self.stats.on_uplink_stranded(len(packets))
            return
        relay.offer([(p, 0) for p in packets])

    # -- death / churn handling ---------------------------------------------------------

    def _on_node_death(self, node: SensorNode) -> None:
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, "node.death", node=node.id)
        self._release_cluster_resources(node, reason="head death")

    def _release_cluster_resources(self, node: SensorNode, reason: str) -> None:
        """Unwind whatever cluster machinery a node going dark was running.

        Shared by battery death and churn failure: a downed head's relay
        strands whatever it was carrying (counted exactly once, as
        uplink_stranded) and its members are detached until the next
        round (§III-B).
        """
        relay = self._relays.pop(node.id, None)
        if relay is not None:
            leftovers = relay.stop()
            if leftovers:
                self.stats.on_uplink_stranded(len(leftovers))
                if self.tracer is not None:
                    self.tracer.annotate(
                        self.sim.now, "uplink.dropped",
                        head=node.id, reason=reason,
                        uids=[p.uid for p, _ in leftovers],
                    )
        members = self._members_of.pop(node.id, None)
        if members:
            for member in members:
                if member.mac.is_attached:
                    member.mac.detach()

    # -- dynamics hooks (driven by the EventTimeline) -----------------------------------

    def _fail_node(self, node_id: int) -> None:
        """Apply a churn failure (no-op on already-down nodes)."""
        node = self.nodes[node_id]
        if not node.is_up:
            return
        was_head = node.role is NodeRole.HEAD
        orphans = node.fail()
        self.stats.on_churn_failure(node_id, len(orphans), self.sim.now)
        if self.tracer is not None:
            self.tracer.annotate(
                self.sim.now, "node.fail",
                node=node_id, was_head=was_head,
                uids=[p.uid for p in orphans],
            )
        if was_head:
            self._release_cluster_resources(node, reason="head churn failure")

    def _recover_node(self, node_id: int) -> None:
        """Apply a churn recovery (no-op unless the node is down-but-charged)."""
        node = self.nodes[node_id]
        if not node.recover():
            return
        self.stats.on_churn_recovery(node_id, self.sim.now)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, "node.recover", node=node_id)

    def _apply_regime_shift(self, offset_db: float) -> None:
        """Re-draw the network-wide mean attenuation (a moved obstacle).

        The freshly drawn ``offset_db`` replaces the previous regime
        offset; every *active* link shifts by the delta immediately, and
        links built in later rounds are born with the new offset applied
        (see the Link constructions above).
        """
        delta = offset_db - self._regime_offset_db
        self._regime_offset_db = offset_db
        for node in self.nodes:
            link = node.mac.link
            if link is not None:
                link.shift_mean_snr_db(delta)
        for relay in self._relays.values():
            if relay.link is not None:
                relay.link.shift_mean_snr_db(delta)
        self.stats.on_regime_shift(offset_db, self.sim.now)
        if self.tracer is not None:
            self.tracer.annotate(
                self.sim.now, "regime.shift", offset_db=offset_db
            )

    # -- settle cadence ---------------------------------------------------------------------

    def _settle_tick(self) -> None:
        for node in self.nodes:
            if node.alive:
                node.settle()
        self._settle_handle = self.sim.call_in_strict(
            self.settle_interval_s, self._settle_tick
        )

    # -- reporting ----------------------------------------------------------------------------

    @property
    def alive_count(self) -> int:
        """Nodes with battery remaining."""
        return sum(1 for n in self.nodes if n.alive)

    @property
    def up_count(self) -> int:
        """Operational nodes: battery remaining *and* not churn-failed.

        Equals :attr:`alive_count` while dynamics are disabled."""
        return sum(1 for n in self.nodes if n.is_up)

    @property
    def dead_fraction(self) -> float:
        """Fraction of nodes exhausted."""
        return 1.0 - self.alive_count / len(self.nodes)

    @property
    def is_dead(self) -> bool:
        """The paper's network-death rule: the dead fraction *exceeds* the
        threshold (same convention as metrics.lifetime.network_lifetime_s,
        so a run stopped at death always yields a measurable lifetime)."""
        n = len(self.nodes)
        dead = n - self.alive_count
        if self.cfg.dead_fraction >= 1.0:
            return dead >= n
        import math

        return dead >= math.floor(self.cfg.dead_fraction * n) + 1

    def settle_all(self) -> None:
        """Settle every meter now (exact battery levels for snapshots)."""
        for node in self.nodes:
            node.settle()

    def mean_remaining_j(self) -> float:
        """Average battery level across *all* nodes (dead count as 0)."""
        self.settle_all()
        return sum(n.battery.level_j for n in self.nodes) / len(self.nodes)

    def total_consumed_j(self) -> float:
        """Total energy drawn across the network."""
        self.settle_all()
        return sum(n.battery.drawn_j for n in self.nodes)

    def generated_packets(self) -> int:
        """Total packets produced by all sources."""
        return sum(n.source.generated for n in self.nodes)

    def dropped_overflow(self) -> int:
        """Packets lost to buffer overflow."""
        return sum(n.buffer.dropped for n in self.nodes)

    def dropped_retry(self) -> int:
        """Packets shed after the MAC retry budget."""
        return sum(n.mac.stats.packets_dropped_retry for n in self.nodes)

    def queue_lengths(self) -> List[int]:
        """Current queue length per operational node (fairness input)."""
        return [len(n.buffer) for n in self.nodes if n.is_up]

    def energy_breakdown(self) -> Dict[str, float]:
        """Network-wide per-cause energy ledger."""
        self.settle_all()
        out: Dict[str, float] = {}
        for node in self.nodes:
            for cause, joules in node.meter.by_cause.items():
                out[cause] = out.get(cause, 0.0) + joules
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SensorNetwork n={len(self.nodes)} alive={self.alive_count} "
            f"t={self.sim.now:.1f}s round={self.round_index} "
            f"protocol={self.cfg.protocol.value}>"
        )
