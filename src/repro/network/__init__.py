"""Network glue: nodes, role rotation, the runnable SensorNetwork."""

from .network import SensorNetwork
from .node import NodeRole, SensorNode
from .stats import NetworkStats

__all__ = ["SensorNetwork", "SensorNode", "NodeRole", "NetworkStats"]
