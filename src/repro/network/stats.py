"""Network-wide delivery and loss accounting.

One :class:`NetworkStats` instance aggregates everything the metrics
module needs: delivery counts and delays, loss taxonomy (channel errors,
collision-retry drops, buffer overflow), and generated totals.  Raw delays
are kept (float list) because the paper's delay metric is an average but
the extended experiments also report percentiles.

Two delivery terminations exist:

* **local** (paper default, ``routing.mode == "local"``): the cluster
  head is its cluster's sink; member bursts land via :meth:`on_delivered`
  and the head's own data via :meth:`on_delivered_local`.
* **routed** (uplink tier): the sink sits at the end of the head→sink
  relay stack; packets count as delivered only on sink arrival
  (:meth:`on_sink_delivered`, which also records per-packet hop counts),
  and the uplink's own loss taxonomy (``uplink_*`` counters) keeps every
  displaced packet accounted exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..traffic.packet import Packet

__all__ = ["NetworkStats"]


class NetworkStats:
    """Counters + delay samples for one simulation run.

    Parameters
    ----------
    track_sources:
        When True (set by the network iff dynamics are enabled), every
        delivery also credits its source node in
        :attr:`delivered_bits_by_source`, which the engine needs for the
        churn-aware *survivor throughput* metric.  Off by default so the
        static hot path pays nothing.
    max_delay_samples:
        When set (see :attr:`repro.config.ScaleConfig.max_delay_samples`),
        :attr:`delays_s` and :attr:`hop_counts` become bounded reservoir
        samples of that size (Vitter's Algorithm R on the seeded
        ``reservoir_rng`` stream, so runs stay deterministic).  The delay
        *mean* stays exact either way — it is computed from running
        accumulators, not the sample — only the percentiles become
        estimates.  ``None`` (the default) keeps the exact unbounded
        lists, byte-identical to every prior release.
    reservoir_rng:
        Dedicated generator for the reservoir draws; required when
        ``max_delay_samples`` is set.
    """

    def __init__(
        self,
        track_sources: bool = False,
        max_delay_samples: Optional[int] = None,
        reservoir_rng=None,
    ) -> None:
        if max_delay_samples is not None:
            if max_delay_samples < 1:
                raise ValueError("max_delay_samples must be >= 1")
            if reservoir_rng is None:
                raise ValueError(
                    "max_delay_samples requires a dedicated reservoir_rng"
                )
        self.max_delay_samples = max_delay_samples
        self._reservoir_rng = reservoir_rng
        #: Packets handed to the sink over the air.
        self.delivered = 0
        #: Packets aggregated locally by their own cluster head.
        self.delivered_local = 0
        #: Packets corrupted by channel errors (PHY PER).
        self.lost_channel = 0
        #: End-to-end delays (generation -> sink), seconds; radio path
        #: only.  Exact list, or a reservoir sample when
        #: ``max_delay_samples`` is set (see the class docstring).
        self.delays_s: List[float] = []
        #: Running accumulators: the delay count/sum over *every*
        #: delivery, independent of the reservoir.
        self.delay_count = 0
        self.delay_sum_s = 0.0
        #: Per-delivery payload bits (throughput accounting).
        self.delivered_bits = 0
        # -- uplink tier (all zero while routing is disabled) -------------
        #: Cluster-hop completion *events* (the relay tier's ingress; under
        #: local routing these are ``delivered``).  A packet displaced from
        #: a relay at a round boundary re-enters as ordinary traffic and
        #: counts again when re-transmitted, so this is not a unique-packet
        #: tally — terminal outcomes (delivered / lost / dropped) are.
        self.cluster_delivered = 0
        #: Radio hops traversed per sink-delivered packet (reservoir
        #: sample under ``max_delay_samples``, like ``delays_s``).
        self.hop_counts: List[int] = []
        self.hop_count_n = 0
        self.hop_sum = 0
        #: Packets corrupted by PER on an uplink hop.
        self.uplink_lost_channel = 0
        #: Packets shed after the uplink collision-retry budget.
        self.uplink_dropped_retry = 0
        #: Packets dropped at a full relay queue.
        self.uplink_dropped_overflow = 0
        #: Packets stranded in transit (head death, dead next hop,
        #: defensive hop cap).
        self.uplink_stranded = 0
        # -- dynamics (all zero while repro.dynamics is disabled) ----------
        #: Applied churn failures (no-op injections on already-down or
        #: battery-dead nodes are not counted).
        self.churn_failures = 0
        #: Applied churn recoveries.
        self.churn_recoveries = 0
        #: Applied shadowing regime shifts.
        self.regime_shifts = 0
        #: Packets lost from the queue (or mid-flight burst) of a node
        #: that churn-failed — gone with the node's volatile memory.
        self.orphaned = 0
        #: Time of the first applied churn failure (None: no churn).
        self.first_failure_s: Optional[float] = None
        #: Source node id -> payload bits it got delivered (only
        #: populated when ``track_sources``; see the class docstring).
        self.delivered_bits_by_source: Optional[Dict[int, int]] = (
            {} if track_sources else None
        )

    # Generated / dropped totals are pulled from sources and buffers at
    # report time by the network, so they are not duplicated here.

    def _credit_sources(self, packets: List[Packet]) -> None:
        """Credit each packet's source for survivor-throughput tracking."""
        bysrc = self.delivered_bits_by_source
        if bysrc is None:
            return
        for p in packets:
            bysrc[p.source_id] = bysrc.get(p.source_id, 0) + p.size_bits

    def _record_delay(self, delay_s: float) -> None:
        """Accumulate one delivery delay (exact list or reservoir)."""
        self.delay_count += 1
        self.delay_sum_s += delay_s
        cap = self.max_delay_samples
        if cap is None or len(self.delays_s) < cap:
            self.delays_s.append(delay_s)
        else:
            # Vitter's Algorithm R: uniform over everything seen so far.
            j = int(self._reservoir_rng.integers(self.delay_count))
            if j < cap:
                self.delays_s[j] = delay_s

    def _record_hops(self, hops: int) -> None:
        """Accumulate one sink delivery's hop count (list or reservoir)."""
        self.hop_count_n += 1
        self.hop_sum += hops
        cap = self.max_delay_samples
        if cap is None or len(self.hop_counts) < cap:
            self.hop_counts.append(hops)
        else:
            j = int(self._reservoir_rng.integers(self.hop_count_n))
            if j < cap:
                self.hop_counts[j] = hops

    def on_delivered(self, packets: List[Packet], sender_id: int, now: float) -> None:
        """Sink callback for over-the-air deliveries (local routing)."""
        self.delivered += len(packets)
        for p in packets:
            self._record_delay(now - p.birth_s)
            self.delivered_bits += p.size_bits
        self._credit_sources(packets)

    def on_delivered_local(self, packets: List[Packet], node_id: int, now: float) -> None:
        """Sink callback for a head aggregating its own data."""
        self.delivered_local += len(packets)
        for p in packets:
            self.delivered_bits += p.size_bits
        self._credit_sources(packets)

    def on_lost(self, packets: List[Packet], sender_id: int, now: float) -> None:
        """Sink callback for PHY-corrupted packets."""
        self.lost_channel += len(packets)

    # -- uplink tier callbacks ---------------------------------------------------

    def on_cluster_delivered(
        self, packets: List[Packet], sender_id: int, now: float
    ) -> None:
        """Member burst arrived at its head (routing enabled; not yet at
        the sink, so not counted ``delivered``)."""
        self.cluster_delivered += len(packets)

    def on_sink_delivered(
        self, packets: List[Packet], hops: List[int], sender_id: int, now: float
    ) -> None:
        """Packets completed their final uplink hop into the sink."""
        self.delivered += len(packets)
        for p, h in zip(packets, hops):
            self._record_delay(now - p.birth_s)
            self.delivered_bits += p.size_bits
            self._record_hops(h)
        self._credit_sources(packets)

    def on_uplink_lost(self, n: int) -> None:
        """``n`` packets corrupted on an uplink hop."""
        self.uplink_lost_channel += n

    def on_uplink_dropped_retry(self, n: int) -> None:
        """``n`` packets shed after the uplink retry budget."""
        self.uplink_dropped_retry += n

    def on_uplink_dropped_overflow(self, n: int) -> None:
        """``n`` packets dropped at a full relay queue."""
        self.uplink_dropped_overflow += n

    def on_uplink_stranded(self, n: int) -> None:
        """``n`` packets stranded in transit (death / hop cap)."""
        self.uplink_stranded += n

    # -- dynamics callbacks ------------------------------------------------------

    def on_churn_failure(self, node_id: int, orphans: int, now: float) -> None:
        """A churn failure was applied; ``orphans`` packets died with it."""
        self.churn_failures += 1
        self.orphaned += orphans
        if self.first_failure_s is None:
            self.first_failure_s = now

    def on_churn_recovery(self, node_id: int, now: float) -> None:
        """A churn recovery was applied."""
        self.churn_recoveries += 1

    def on_regime_shift(self, offset_db: float, now: float) -> None:
        """A shadowing regime shift was applied network-wide."""
        self.regime_shifts += 1

    # -- derived ---------------------------------------------------------------

    @property
    def total_delivered(self) -> int:
        """Over-the-air plus local deliveries."""
        return self.delivered + self.delivered_local

    @property
    def uplink_undelivered(self) -> int:
        """Every packet the uplink tier lost or shed, by any cause."""
        return (
            self.uplink_lost_channel
            + self.uplink_dropped_retry
            + self.uplink_dropped_overflow
            + self.uplink_stranded
        )

    def mean_delay_s(self) -> float:
        """Average end-to-end delay of radio deliveries (0 if none).

        Computed from the running accumulators, so it is exact even when
        ``delays_s`` is a bounded reservoir sample (the additions happen
        in delivery order either way — identical float result)."""
        if self.delay_count == 0:
            return 0.0
        return self.delay_sum_s / self.delay_count

    def mean_hop_count(self) -> float:
        """Average radio hops per sink delivery (0 if routing disabled)."""
        if self.hop_count_n == 0:
            return 0.0
        return self.hop_sum / self.hop_count_n
