"""Network-wide delivery and loss accounting.

One :class:`NetworkStats` instance aggregates everything the metrics
module needs: delivery counts and delays, loss taxonomy (channel errors,
collision-retry drops, buffer overflow), and generated totals.  Raw delays
are kept (float list) because the paper's delay metric is an average but
the extended experiments also report percentiles.
"""

from __future__ import annotations

from typing import List

from ..traffic.packet import Packet

__all__ = ["NetworkStats"]


class NetworkStats:
    """Counters + delay samples for one simulation run."""

    def __init__(self) -> None:
        #: Packets handed to the sink over the air.
        self.delivered = 0
        #: Packets aggregated locally by their own cluster head.
        self.delivered_local = 0
        #: Packets corrupted by channel errors (PHY PER).
        self.lost_channel = 0
        #: End-to-end delays (generation -> sink), seconds; radio path only.
        self.delays_s: List[float] = []
        #: Per-delivery payload bits (throughput accounting).
        self.delivered_bits = 0

    # Generated / dropped totals are pulled from sources and buffers at
    # report time by the network, so they are not duplicated here.

    def on_delivered(self, packets: List[Packet], sender_id: int, now: float) -> None:
        """Sink callback for over-the-air deliveries."""
        self.delivered += len(packets)
        for p in packets:
            self.delays_s.append(now - p.birth_s)
            self.delivered_bits += p.size_bits

    def on_delivered_local(self, packets: List[Packet], node_id: int, now: float) -> None:
        """Sink callback for a head aggregating its own data."""
        self.delivered_local += len(packets)
        for p in packets:
            self.delivered_bits += p.size_bits

    def on_lost(self, packets: List[Packet], sender_id: int, now: float) -> None:
        """Sink callback for PHY-corrupted packets."""
        self.lost_channel += len(packets)

    @property
    def total_delivered(self) -> int:
        """Over-the-air plus local deliveries."""
        return self.delivered + self.delivered_local

    def mean_delay_s(self) -> float:
        """Average end-to-end delay of radio deliveries (0 if none)."""
        if not self.delays_s:
            return 0.0
        return sum(self.delays_s) / len(self.delays_s)
