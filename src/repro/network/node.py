"""A sensor node: battery + radios + buffer + source + MAC, role-switchable.

LEACH rotates the cluster-head duty, so every node carries both
personalities: as a **sensor** it runs :class:`CaemSensorMac` against its
cluster head; as a **head** it runs :class:`CaemClusterHeadMac`
(tone broadcaster + receiver) for one round.  The network layer flips
roles at round boundaries.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

import numpy as np

from ..channel.medium import DataChannel
from ..config import NetworkConfig
from ..energy import Battery, EnergyMeter, RadioEnergyModel
from ..errors import ClusterError
from ..mac import (
    CaemClusterHeadMac,
    CaemSensorMac,
    ClusterContext,
    ToneBroadcaster,
    ToneChannelSpec,
    build_sensor_mac,
)
from ..phy import AbicmTable, DataRadio, ToneRadio
from ..sim import Simulator
from ..traffic import PacketBuffer, make_source
from ..traffic.packet import Packet

__all__ = ["NodeRole", "SensorNode"]


class NodeRole(enum.Enum):
    """What the node is doing this round."""

    SENSOR = "sensor"
    HEAD = "head"


class SensorNode:
    """One node of the network (see module docstring).

    Parameters
    ----------
    on_death:
        Network callback fired once when the battery empties.
    on_head_ingress:
        Called with (packets, node_id, now) when this node, acting as a
        cluster head, aggregates its own sensed data at zero radio cost.
        The network layer decides the terminus: with routing disabled the
        head *is* the sink (the paper's local delivery); with the uplink
        tier enabled the packets enter the head's relay queue instead.
    initial_energy_j:
        Battery capacity override (heterogeneous-battery dynamics); None
        uses the configured ``cfg.energy.initial_energy_j``.
    source_model:
        Traffic source override (bursty-traffic dynamics); None uses the
        configured ``cfg.traffic.source_model``.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cfg: NetworkConfig,
        abicm: AbicmTable,
        model: RadioEnergyModel,
        tone_spec: ToneChannelSpec,
        rng: np.random.Generator,
        on_death: Callable[["SensorNode"], None],
        on_head_ingress: Callable[[List[Packet], int, float], None],
        tracer=None,
        initial_energy_j: Optional[float] = None,
        source_model: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.id = node_id
        self.cfg = cfg
        self.tone_spec = tone_spec
        self.role = NodeRole.SENSOR
        self._on_death = on_death
        self._on_head_ingress = on_head_ingress

        self.battery = Battery(
            cfg.energy.initial_energy_j
            if initial_energy_j is None
            else initial_energy_j,
            self._battery_died,
        )
        self.meter = EnergyMeter(sim, model, self.battery)
        self.data_radio = DataRadio(sim, self.meter, cfg.energy.startup_time_s)
        self.tone_radio = ToneRadio(
            sim, self.meter, monitor_duty=cfg.tone.monitor_duty_cycle
        )
        self.buffer = PacketBuffer(capacity=cfg.traffic.buffer_packets)
        self.source = make_source(
            cfg.traffic.source_model if source_model is None else source_model,
            sim,
            node_id,
            cfg.phy.packet_length_bits,
            self._on_generated,
            cfg.traffic.packets_per_second,
            rng,
            cfg.traffic.onoff_on_s,
            cfg.traffic.onoff_off_s,
        )
        self.mac: CaemSensorMac = build_sensor_mac(
            cfg.protocol,
            sim,
            node_id,
            self.buffer,
            abicm,
            self.data_radio,
            self.tone_radio,
            cfg.mac,
            cfg.phy,
            cfg.policy,
            rng,
            tracer,
        )
        # Head-role machinery (built lazily per round).  With
        # ``cfg.scale.reuse_head_stack`` the channel/broadcaster/MAC trio
        # survives between this node's head terms and is reset instead of
        # reallocated (construction draws nothing, so reuse is
        # bit-identical — see CaemClusterHeadMac.reset).
        self.head_mac: Optional[CaemClusterHeadMac] = None
        self._head_stack: Optional[tuple] = None
        self.alive = True
        self.death_time_s: Optional[float] = None
        # Churn state (repro.dynamics): a *failed* node is transiently
        # down — battery intact, radios off, source silent — and may
        # recover; ``alive`` keeps its battery-death meaning throughout.
        self.failed = False
        self.last_failure_s: Optional[float] = None

    # -- traffic -----------------------------------------------------------------

    def start(self) -> None:
        """Begin sensing (start the traffic source)."""
        if self.is_up:
            self.source.start()

    def _on_generated(self, packet: Packet) -> None:
        if not self.is_up:
            return
        if self.role is NodeRole.HEAD:
            # Head-local aggregation, no radio cost; the network routes it
            # onward (or counts it delivered when the head is the sink).
            self._on_head_ingress([packet], self.id, self.sim.now)
            return
        accepted = self.buffer.offer(packet)
        if accepted:
            self.mac.policy.observe_arrival(len(self.buffer), self.sim.now)
            self.mac.notify_arrival()

    # -- role switching ------------------------------------------------------------

    def become_head(
        self,
        phy_rng: np.random.Generator,
        on_delivered,
        on_lost,
    ) -> ClusterContext:
        """Assume cluster-head duty; returns the context sensors attach to."""
        if not self.is_up:
            raise ClusterError(f"down node {self.id} elected head")
        self.mac.detach()
        self.role = NodeRole.HEAD
        if self._head_stack is not None:
            channel, broadcaster, head_mac = self._head_stack
            head_mac.reset(phy_rng, on_delivered, on_lost)
            self.head_mac = head_mac
        else:
            channel = DataChannel(self.sim, name=f"cluster-{self.id}")
            broadcaster = ToneBroadcaster(
                self.sim, self.tone_spec, self.meter, name=f"tone-{self.id}"
            )
            self.head_mac = CaemClusterHeadMac(
                self.sim,
                self.id,
                channel,
                broadcaster,
                self.data_radio,
                self.cfg.phy,
                phy_rng,
                on_delivered=on_delivered,
                on_lost=on_lost,
            )
            if self.cfg.scale.reuse_head_stack:
                self._head_stack = (channel, broadcaster, self.head_mac)
        self.head_mac.start()
        # Whatever the node had queued is aggregated at zero radio cost
        # (the head reaches itself for free); the network routes it on.
        backlog = self.buffer.take(len(self.buffer))
        if backlog:
            self._on_head_ingress(backlog, self.id, self.sim.now)
        return ClusterContext(self.id, channel, broadcaster, self.head_mac)

    def become_sensor(self) -> None:
        """Drop head duty (round ended)."""
        if self.head_mac is not None:
            self.head_mac.stop()
            self.head_mac = None
        self.role = NodeRole.SENSOR

    # -- churn (repro.dynamics) ---------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """Operational: battery charged *and* not transiently failed.

        With dynamics disabled ``failed`` is never set, so ``is_up``
        equals ``alive`` and every caller behaves bit-identically to the
        static network.
        """
        return self.alive and not self.failed

    def fail(self) -> List[Packet]:
        """Transient failure (churn): go dark, lose the queue.

        The node powers both radios down and stops sensing, exactly as a
        battery death does, but keeps its charge and may :meth:`recover`.
        Returns the packets orphaned from its buffer (including any burst
        that was on the air — the MAC aborts it on the ledger and requeues
        it first), so the network can account for every one of them.
        Already-down nodes return an empty list (idempotent no-op).
        """
        if not self.is_up:
            return []
        self.failed = True
        self.last_failure_s = self.sim.now
        self.source.stop()
        if self.head_mac is not None:
            self.head_mac.stop()
            self.head_mac = None
        self.role = NodeRole.SENSOR
        # detach() aborts an in-flight burst and requeues it, so the
        # buffer afterwards holds *every* packet this node still owned.
        self.mac.detach()
        return self.buffer.take(len(self.buffer))

    def recover(self) -> bool:
        """Return from a transient failure; no-op unless currently failed.

        The node resumes sensing immediately (fresh, empty queue) and
        rejoins a cluster at the next LEACH round — the same re-entry
        path members stranded by a head death take.  A battery-dead node
        never recovers.  Returns True when the transition applied.
        """
        if not self.alive or not self.failed:
            return False
        self.failed = False
        self.source.start()
        return True

    # -- death -------------------------------------------------------------------------

    def _battery_died(self) -> None:
        if not self.alive:
            return
        self.alive = False
        self.death_time_s = self.sim.now
        self.source.stop()
        if self.head_mac is not None:
            self.head_mac.stop()
            self.head_mac = None
        self.mac.shutdown()
        self._on_death(self)

    # -- reporting -----------------------------------------------------------------------

    @property
    def remaining_j(self) -> float:
        """Battery level (settle the meter first for exact snapshots)."""
        return self.battery.level_j

    def settle(self) -> None:
        """Flush open continuous draws so battery level is current."""
        self.meter.settle_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ("alive" if self.is_up else "down") if self.alive else "dead"
        return (
            f"<SensorNode {self.id} {self.role.value} {state} "
            f"E={self.battery.level_j:.2f}J q={len(self.buffer)}>"
        )
