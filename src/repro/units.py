"""Unit conversion helpers used throughout the library.

Internally the library uses SI base units everywhere: seconds, watts,
joules, metres, hertz, bits.  Decibel quantities appear only at module
boundaries (channel gains, SNR thresholds), through the helpers below.

All helpers accept scalars or numpy arrays and return the same shape
(`numpy` broadcasting rules); pure-scalar inputs return Python floats.
"""

from __future__ import annotations

import math
from typing import overload

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "seconds",
    "milliseconds",
    "microseconds",
    "ms",
    "us",
    "kbps",
    "mbps",
    "kbits",
    "joules",
    "millijoules",
]

_LN10_OVER_10 = math.log(10.0) / 10.0


def _wrap(value):
    """Return a float for 0-d results, pass arrays through."""
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return float(value)
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    return value


@overload
def db_to_linear(db: float) -> float: ...
@overload
def db_to_linear(db: np.ndarray) -> np.ndarray: ...


def db_to_linear(db):
    """Convert a decibel ratio to a linear power ratio (10^(dB/10))."""
    if isinstance(db, np.ndarray):
        return np.exp(db * _LN10_OVER_10)
    return math.exp(float(db) * _LN10_OVER_10)


@overload
def linear_to_db(x: float) -> float: ...
@overload
def linear_to_db(x: np.ndarray) -> np.ndarray: ...


def linear_to_db(x):
    """Convert a linear power ratio to decibels (10·log10 x).

    Zero or negative inputs map to ``-inf`` rather than raising, matching
    the physical meaning (no power -> -inf dB).
    """
    if isinstance(x, np.ndarray):
        with np.errstate(divide="ignore"):
            return 10.0 * np.log10(np.maximum(x, 0.0))
    x = float(x)
    if x <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(x)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return _wrap(db_to_linear(dbm) * 1e-3)


def watts_to_dbm(watts: float) -> float:
    """Convert a power in watts to dBm; 0 W maps to ``-inf`` dBm."""
    return _wrap(linear_to_db(watts / 1e-3) if not isinstance(watts, np.ndarray)
                 else linear_to_db(watts / 1e-3))


# -- small literal helpers so configs read like the paper -------------------

def seconds(x: float) -> float:
    """Identity, for symmetry: ``seconds(5)`` is 5 s."""
    return float(x)


def milliseconds(x: float) -> float:
    """Milliseconds to seconds."""
    return float(x) * 1e-3


def microseconds(x: float) -> float:
    """Microseconds to seconds."""
    return float(x) * 1e-6


#: Short aliases used pervasively in configs/tests.
ms = milliseconds
us = microseconds


def kbps(x: float) -> float:
    """Kilobits per second to bits per second."""
    return float(x) * 1e3


def mbps(x: float) -> float:
    """Megabits per second to bits per second."""
    return float(x) * 1e6


def kbits(x: float) -> float:
    """Kilobits to bits."""
    return float(x) * 1e3


def joules(x: float) -> float:
    """Identity, for symmetry."""
    return float(x)


def millijoules(x: float) -> float:
    """Millijoules to joules."""
    return float(x) * 1e-3
