"""The paper's core contribution: channel-adaptive transmission policies.

:func:`make_policy` builds the right policy for a
:class:`~repro.config.Protocol`.
"""

from typing import Callable, Optional

from ..config import PolicyConfig, Protocol
from ..errors import ConfigError
from .adaptive import AdaptiveThresholdPolicy
from .base import TransmissionPolicy
from .fixed import FixedThresholdPolicy
from .thresholds import ThresholdLadder
from .unconstrained import AlwaysTransmitPolicy

__all__ = [
    "TransmissionPolicy",
    "ThresholdLadder",
    "AdaptiveThresholdPolicy",
    "FixedThresholdPolicy",
    "AlwaysTransmitPolicy",
    "make_policy",
]


def make_policy(
    protocol: Protocol,
    ladder: ThresholdLadder,
    cfg: Optional[PolicyConfig] = None,
    on_change: Optional[Callable[[float, int, int], None]] = None,
) -> TransmissionPolicy:
    """Build the transmission policy for one of the paper's protocols."""
    if protocol is Protocol.PURE_LEACH:
        return AlwaysTransmitPolicy()
    if protocol is Protocol.CAEM_FIXED:
        return FixedThresholdPolicy(ladder)
    if protocol is Protocol.CAEM_ADAPTIVE:
        return AdaptiveThresholdPolicy(ladder, cfg, on_change)
    raise ConfigError(f"unknown protocol {protocol!r}")
