"""Transmission-policy interface — the seam where CAEM's idea lives.

A *transmission policy* answers one question for the MAC: **given the
measured CSI right now, may I transmit?**  The paper's three protocols are
three policies over the same MAC machinery:

* :class:`~repro.policy.unconstrained.AlwaysTransmitPolicy` — pure LEACH;
* :class:`~repro.policy.fixed.FixedThresholdPolicy` — Scheme 2;
* :class:`~repro.policy.adaptive.AdaptiveThresholdPolicy` — Scheme 1.

Policies also observe the node's queue dynamics (``observe_arrival``) —
that is the input to Scheme 1's predictor — and report their current
threshold class for metrics/traces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

__all__ = ["TransmissionPolicy"]


class TransmissionPolicy(ABC):
    """Decides whether the current channel quality permits transmission."""

    #: Short name used in traces and result tables.
    name: str = "policy"

    @abstractmethod
    def allows(self, snr_db: float) -> bool:
        """May the node transmit at measured CSI ``snr_db``?"""

    @abstractmethod
    def threshold_db(self) -> float:
        """Current SNR threshold in dB (−inf when ungated)."""

    def threshold_class(self) -> Optional[int]:
        """Current 0-based threshold class, or None when ungated."""
        return None

    def observe_arrival(self, queue_length: int, now: float) -> None:
        """Called at every packet arrival *after* enqueueing.

        ``queue_length`` is the post-arrival queue length — the paper's
        V(t_i).  The default is a no-op; Scheme 1 overrides it.
        """

    def observe_service(self, queue_length: int, now: float) -> None:
        """Called after packets leave the queue (post-burst).

        Not used by the paper's controller (which samples on arrivals
        only) but part of the interface so extensions can react to
        departures as well.
        """

    def reset(self) -> None:
        """Forget adaptive state (e.g. when a new LEACH round re-clusters)."""
