"""Threshold classes: the ladder Scheme 1 climbs and descends.

§III-C: "there are 4 [threshold classes] corresponding to 4 throughput
levels".  Class k (0-based) means "transmit only when the channel supports
ABICM mode k+1 or better"; the class's SNR value is that mode's switching
threshold.  :class:`ThresholdLadder` is a thin, immutable view over the
:class:`~repro.phy.abicm.AbicmTable` that the policies share.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import PhyError
from ..phy.abicm import AbicmTable

__all__ = ["ThresholdLadder"]


class ThresholdLadder:
    """The ordered transmission-threshold classes of a 4-mode ABICM PHY."""

    __slots__ = ("_thresholds_db", "_rates_bps")

    def __init__(self, table: AbicmTable) -> None:
        self._thresholds_db: Tuple[float, ...] = tuple(
            m.threshold_db for m in table.modes
        )
        self._rates_bps: Tuple[float, ...] = tuple(
            m.throughput_bps for m in table.modes
        )

    @property
    def n_classes(self) -> int:
        """Number of classes (= number of ABICM modes)."""
        return len(self._thresholds_db)

    @property
    def highest_class(self) -> int:
        """Index of the most demanding class (2 Mbps in the paper)."""
        return len(self._thresholds_db) - 1

    @property
    def lowest_class(self) -> int:
        """Index of the least demanding class (250 kbps)."""
        return 0

    def snr_db(self, klass: int) -> float:
        """SNR threshold of class ``klass``."""
        self._check(klass)
        return self._thresholds_db[klass]

    def rate_bps(self, klass: int) -> float:
        """Throughput of the mode this class gates on."""
        self._check(klass)
        return self._rates_bps[klass]

    def clamp(self, klass: int) -> int:
        """Clamp an index into the valid class range."""
        return max(0, min(klass, self.highest_class))

    def _check(self, klass: int) -> None:
        if not 0 <= klass < len(self._thresholds_db):
            raise PhyError(
                f"threshold class {klass} out of range 0..{self.highest_class}"
            )

    def __len__(self) -> int:
        return len(self._thresholds_db)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(
            f"{k}:{t:.1f}dB→{r/1e3:.0f}k"
            for k, (t, r) in enumerate(zip(self._thresholds_db, self._rates_bps))
        )
        return f"ThresholdLadder({pairs})"
