"""Scheme 1 — adaptive threshold adjustment (paper §III-C, Fig. 6).

The controller the paper contributes.  Verbatim mechanics:

* At every packet arrival the node counts arrivals; every **M = 5** of
  them it samples the queue length, producing the series
  ``V(t_0), V(t_M), V(t_2M), …``.
* The variation ``ΔV = V(t_kM) − V(t_(k−1)M)`` is the traffic predictor:
  "if ΔV ≥ 0, the queue length has an increasing tendency; otherwise ...
  likely to decrease".
* The mechanism is **armed** "once the queue length [reaches] Q_start
  ( = 15)".
* While armed, at each sample: if **ΔV ≥ 0**, *lower* the transmission
  threshold by **one class** (give the node more chances to send); if
  **ΔV < 0**, *raise it directly to the highest* class (e.g. straight
  from 250 kbps back to 2 Mbps) to save energy.

Interpretive choice (scan ambiguity, documented in DESIGN.md): the
controller disarms — and the threshold snaps to the highest class — when
the queue drains back below Q_start; this is behaviourally equivalent to
keeping it armed (a draining queue has ΔV < 0, which forces the highest
class anyway) but makes the state machine explicit.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import PolicyConfig
from ..errors import ConfigError
from .base import TransmissionPolicy
from .thresholds import ThresholdLadder

__all__ = ["AdaptiveThresholdPolicy"]

#: Callback signature for threshold-change observers: (now, old, new).
ChangeHook = Callable[[float, int, int], None]


class AdaptiveThresholdPolicy(TransmissionPolicy):
    """The paper's Scheme 1 controller (one instance per sensor node)."""

    name = "scheme1"

    def __init__(
        self,
        ladder: ThresholdLadder,
        cfg: Optional[PolicyConfig] = None,
        on_change: Optional[ChangeHook] = None,
    ) -> None:
        cfg = cfg or PolicyConfig()
        initial = (
            ladder.highest_class if cfg.initial_class is None else cfg.initial_class
        )
        if not 0 <= initial <= ladder.highest_class:
            raise ConfigError(
                f"initial class {initial} outside 0..{ladder.highest_class}"
            )
        self.ladder = ladder
        self.sample_interval = cfg.sample_interval_packets
        self.arm_queue_length = cfg.arm_queue_length
        self._initial_class = initial
        self._class = initial
        #: Current class's SNR gate, mirrored here so the per-pulse
        #: allows() check is one float compare (kept in sync by
        #: _set_class; the ladder is immutable).
        self._threshold_db = ladder.snr_db(initial)
        self._on_change = on_change

        # Sampling state (Fig. 6 locals).
        self._arrivals_since_sample = 0
        self._last_sample: Optional[int] = None
        self._armed = False

        # Telemetry.
        self.samples_taken = 0
        self.lowers = 0
        self.raises = 0

    # -- TransmissionPolicy ------------------------------------------------------

    def allows(self, snr_db: float) -> bool:
        """Transmit iff measured CSI clears the current class threshold."""
        return snr_db >= self._threshold_db

    def threshold_db(self) -> float:
        """Current SNR threshold."""
        return self._threshold_db

    def threshold_class(self) -> int:
        """Current 0-based class index."""
        return self._class

    @property
    def is_armed(self) -> bool:
        """True while the adjustment mechanism is active."""
        return self._armed

    def observe_arrival(self, queue_length: int, now: float) -> None:
        """Fig. 6: run at each packet arrival epoch."""
        if queue_length < 0:
            raise ConfigError("queue length cannot be negative")
        self._arrivals_since_sample += 1
        if self._arrivals_since_sample < self.sample_interval:
            return
        self._arrivals_since_sample = 0
        self._sample(queue_length, now)

    def reset(self) -> None:
        """Fresh round: back to the initial class, forget the series."""
        self._set_class(self._initial_class, now=float("nan"), silent=True)
        self._arrivals_since_sample = 0
        self._last_sample = None
        self._armed = False

    # -- controller core -----------------------------------------------------------

    def _sample(self, queue_length: int, now: float) -> None:
        self.samples_taken += 1
        previous, self._last_sample = self._last_sample, queue_length

        # Arm / disarm.
        if not self._armed:
            if queue_length >= self.arm_queue_length:
                self._armed = True
            else:
                return  # mechanism not started; threshold untouched
        elif queue_length < self.arm_queue_length:
            self._armed = False
            self._set_class(self.ladder.highest_class, now)
            return

        if previous is None:
            return  # need two samples for a ΔV
        delta_v = queue_length - previous
        if delta_v >= 0:
            # Increasing tendency: relax the gate one class.
            self._set_class(self.ladder.clamp(self._class - 1), now)
        else:
            # Draining: snap straight back to the energy-saving class.
            self._set_class(self.ladder.highest_class, now)

    def _set_class(self, new_class: int, now: float, silent: bool = False) -> None:
        old = self._class
        if new_class == old:
            return
        self._class = new_class
        self._threshold_db = self.ladder.snr_db(new_class)
        if new_class < old:
            self.lowers += 1
        else:
            self.raises += 1
        if not silent and self._on_change is not None:
            self._on_change(now, old, new_class)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveThresholdPolicy(class={self._class}, armed={self._armed}, "
            f"lowers={self.lowers}, raises={self.raises})"
        )
