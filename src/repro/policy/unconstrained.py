"""Pure-LEACH baseline: no channel gating (paper §IV-A).

"We choose pure LEACH without channel adaptiveness ... as our reference."
The node transmits whenever the data channel is free, whatever the CSI;
the adaptive PHY still picks the best supportable mode (reliability
demands FEC matched to the channel), and in outage it falls back to the
most robust mode and eats the packet-error rate.  The *energy* consequence
is the paper's point: packets routinely ride slow modes and long airtimes.
"""

from __future__ import annotations

from .base import TransmissionPolicy

__all__ = ["AlwaysTransmitPolicy"]


class AlwaysTransmitPolicy(TransmissionPolicy):
    """Never blocks on channel quality."""

    name = "pure_leach"

    def allows(self, snr_db: float) -> bool:
        """Always true — the baseline ignores CSI."""
        return True

    def threshold_db(self) -> float:
        """No gate: −inf."""
        return float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AlwaysTransmitPolicy()"
