"""Scheme 2 — fixed threshold at the highest class (paper §IV-A).

"In Scheme 2, the transmission threshold is fixed at the highest value,
2 Mbps for the whole simulation time."  Maximum energy efficiency per
packet, no regard for queue build-up — the fairness/overflow foil to
Scheme 1.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import TransmissionPolicy
from .thresholds import ThresholdLadder

__all__ = ["FixedThresholdPolicy"]


class FixedThresholdPolicy(TransmissionPolicy):
    """Gate transmission on a fixed threshold class (default: highest)."""

    name = "scheme2"

    def __init__(self, ladder: ThresholdLadder, klass: int | None = None) -> None:
        if klass is None:
            klass = ladder.highest_class
        if not 0 <= klass <= ladder.highest_class:
            raise ConfigError(
                f"threshold class {klass} outside 0..{ladder.highest_class}"
            )
        self.ladder = ladder
        self._class = klass
        self._threshold_db = ladder.snr_db(klass)

    def allows(self, snr_db: float) -> bool:
        """Transmit iff CSI clears the pinned threshold."""
        return snr_db >= self._threshold_db

    def threshold_db(self) -> float:
        """The pinned SNR threshold."""
        return self._threshold_db

    def threshold_class(self) -> int:
        """The pinned class index."""
        return self._class

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedThresholdPolicy(class={self._class})"
