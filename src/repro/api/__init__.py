"""``repro.api`` — the one way to define and execute experiments.

The layer every entry point (CLI, benches, examples, notebooks) builds
on:

* :class:`Scenario` — fluent builder for one fully specified run
  (config + run options + tags);
* :class:`Campaign` — a scenario grid (protocol × load × seed × any
  config field) executed serially or across a process pool
  (``jobs=N``), bit-identical at any parallelism;
* :class:`ResultStore` — JSONL/CSV persistence of :class:`RunResult`
  rows, so figures re-render without re-simulating;
* :func:`experiment` / :func:`get_experiment` / :func:`list_experiments`
  — the pluggable registry the figures, tables, and extension studies
  publish themselves through;
* :func:`simulate` — the single engine choke point (one config +
  options in, one :class:`RunResult` out).

Quickstart::

    from repro.api import Campaign, ResultStore, Scenario
    from repro.config import Protocol

    base = Scenario.from_preset("quick").with_runtime(horizon_s=60.0)
    camp = (Campaign(base, name="demo")
            .over(protocol=list(Protocol), load_pps=[5.0, 15.0, 25.0])
            .seeds([1, 2]))
    result = camp.run(jobs=4, store=ResultStore("runs.jsonl"))
    for scenario, run in result:
        print(scenario.describe(), run.delivery_rate)
"""

from .bench import BenchReport, BenchResult, run_bench
from .campaign import (
    Campaign,
    CampaignIncompleteError,
    CampaignResult,
    CellFailure,
    ExecutorSpec,
    SupervisorConfig,
    active_executor,
    active_run_cache,
    active_supervisor,
    default_jobs,
    run_scenarios,
    use_executor,
    use_run_cache,
    use_supervisor,
)
from .engine import RunOptions, simulate
from .registry import (
    ExperimentSpec,
    experiment,
    get_experiment,
    list_experiments,
)
from .result import RunResult
from .scenario import Scenario
from .store import ResultStore

__all__ = [
    "BenchReport",
    "BenchResult",
    "Campaign",
    "CampaignIncompleteError",
    "CampaignResult",
    "CellFailure",
    "ExecutorSpec",
    "ExperimentSpec",
    "ResultStore",
    "RunOptions",
    "RunResult",
    "Scenario",
    "SupervisorConfig",
    "active_executor",
    "active_run_cache",
    "active_supervisor",
    "default_jobs",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_bench",
    "run_scenarios",
    "simulate",
    "use_executor",
    "use_run_cache",
    "use_supervisor",
]
