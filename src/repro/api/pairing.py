"""Digest pairing: line stored :class:`RunResult` rows up with scenario grids.

One scenario grid cell is identified by the 5-tuple
``(protocol, load_pps, seed, horizon_s, config_digest)``.  The first four
coordinates make mismatches human-readable; the config digest is the
decisive discriminator — sweep cells that differ only inside a sub-config
(churn rate, sink offset, network size, ...) share every scalar coordinate
but can never silently fill each other's slot.

This module is the single home of that pairing logic.  It serves three
consumers:

* :func:`repro.experiments.figures._resolve_runs` — ``--from`` re-rendering
  (all cells must pair, every missing cell is reported);
* :class:`repro.service.cache.RunCache` — the content-addressed run cache
  (paired cells are served from the database, missing cells are simulated);
* ad-hoc tools that need to ask "which of these scenarios does this store
  already cover?".
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .result import RunResult

__all__ = [
    "PairKey",
    "scenario_key",
    "run_key",
    "describe_key",
    "pair_stored_runs",
]

#: ``(protocol, load_pps, seed, horizon_s, config_digest)``.
PairKey = Tuple[str, float, int, float, str]


def scenario_key(scenario) -> PairKey:
    """The pairing key of one scenario grid cell."""
    c = scenario.config
    return (
        c.protocol.value,
        c.traffic.packets_per_second,
        c.seed,
        scenario.options.horizon_s,
        c.digest(),
    )


def run_key(run: RunResult) -> PairKey:
    """The pairing key a stored run answers to."""
    return (run.protocol, run.load_pps, run.seed, run.horizon_s,
            run.config_digest)


def describe_key(key: PairKey) -> str:
    """Human-readable cell coordinates (digest abbreviated)."""
    digest = key[4][:12] if key[4] else "<none>"
    return (
        f"protocol={key[0]} load={key[1]:g} seed={key[2]} "
        f"horizon={key[3]:g}s config={digest}"
    )


def pair_stored_runs(
    scenarios: Sequence,
    runs: Sequence[RunResult],
    experiment_id: Optional[str] = None,
) -> Tuple[List[Optional[RunResult]], List[PairKey]]:
    """Pair every scenario with a stored run, reporting **all** misses.

    Returns ``(paired, missing)``: ``paired`` lines up index-for-index
    with ``scenarios`` (``None`` where no stored run fits) and ``missing``
    lists the pairing key of every unfilled cell, in grid order — so a
    partially populated store can report the complete remainder instead of
    failing on the first hole.

    Runs stamped by a *different* experiment are never admitted (fig11 and
    fig12 share the rate horizon but differ in buffers and queue
    collection); experiment-unstamped runs (ad-hoc Campaign output) are
    admitted when their digest matches.  Duplicate rows for one cell are
    consumed in store order, one per matching scenario.
    """
    pool: Dict[PairKey, Deque[RunResult]] = defaultdict(deque)
    for run in runs:
        if (
            experiment_id is not None
            and run.experiment is not None
            and run.experiment != experiment_id
        ):
            continue
        pool[run_key(run)].append(run)
    paired: List[Optional[RunResult]] = []
    missing: List[PairKey] = []
    for sc in scenarios:
        key = scenario_key(sc)
        bucket = pool.get(key)
        if bucket:
            paired.append(bucket.popleft())
        else:
            paired.append(None)
            missing.append(key)
    return paired, missing
