"""Perf-regression harness behind ``repro-caem bench``.

Three rungs, mirroring ``benchmarks/bench_kernel.py``:

* **kernel** — event-heap throughput and MAC-like push/cancel churn, the
  two microbenchmarks that bound how many events per second the
  simulator can carry;
* **quick-run** — a 100-node paper-scale network advanced one full LEACH
  round (20 s), the macro number that tracks whole-stack regressions;
* **figure** — one registry experiment rendered end to end (fig8 at the
  quick preset), so harness overhead (campaign grid, metrics, renderer)
  is covered too.

Everything runs **serially** — the reference container has a single CPU,
so parallel timing would only measure scheduler interference.  Each
invocation appends one trajectory entry to ``benchmarks/BENCH_run.json``
and compares wall times against the committed pytest-benchmark baseline
(``benchmarks/BENCH_kernel.json``), reporting the speedup factor per
benchmark.  ``fail_threshold`` turns the comparison into a CI gate:
``now > threshold × baseline`` on any benchmark fails the run (CI uses a
generous 2.0× to absorb shared-runner jitter).

Timings use best-of-N (min), the standard choice for latency benches:
the minimum is the least contaminated by scheduler noise, and it is the
statistic least likely to flag a phantom regression on a busy host.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..errors import ReproError

__all__ = [
    "BenchResult",
    "BenchReport",
    "run_bench",
    "load_baseline_times",
    "DEFAULT_BASELINE",
    "DEFAULT_TRAJECTORY",
]

DEFAULT_BASELINE = Path("benchmarks") / "BENCH_kernel.json"
DEFAULT_TRAJECTORY = Path("benchmarks") / "BENCH_run.json"

#: bench name -> pytest-benchmark test name in the committed baseline.
_BASELINE_NAMES = {
    "kernel/event-throughput": "test_kernel_event_throughput",
    "kernel/push-pop-cancel-churn": "test_kernel_push_pop_cancel_churn",
    "network/quick-run-100": "test_network_100_node_quick_run",
}


@dataclass
class BenchResult:
    """One timed benchmark: best-of-N wall seconds plus baseline context."""

    name: str
    seconds: float
    rounds: int
    baseline_s: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        """Baseline / now (>1 means faster than the committed baseline)."""
        if self.baseline_s is None or self.seconds <= 0:
            return None
        return self.baseline_s / self.seconds


@dataclass
class BenchReport:
    """A full suite run: per-bench results plus the regression verdict."""

    tier: str
    results: List[BenchResult] = field(default_factory=list)
    fail_threshold: Optional[float] = None

    @property
    def regressions(self) -> List[BenchResult]:
        """Benches slower than ``fail_threshold ×`` their baseline."""
        if self.fail_threshold is None:
            return []
        return [
            r
            for r in self.results
            if r.baseline_s is not None
            and r.seconds > self.fail_threshold * r.baseline_s
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Fixed-width comparison table."""
        lines = [
            f"benchmark suite: tier={self.tier} (serial; best-of-N wall time)",
            f"{'benchmark':<30} {'now':>10} {'baseline':>10} {'speedup':>9}",
        ]
        for r in self.results:
            base = f"{r.baseline_s:.4f}s" if r.baseline_s is not None else "—"
            speed = f"{r.speedup:.2f}x" if r.speedup is not None else "—"
            lines.append(
                f"{r.name:<30} {r.seconds:>9.4f}s {base:>10} {speed:>9}"
            )
        if self.fail_threshold is not None:
            if self.ok:
                lines.append(
                    f"regression gate: OK "
                    f"(all within {self.fail_threshold:g}x of baseline)"
                )
            else:
                names = ", ".join(r.name for r in self.regressions)
                lines.append(
                    f"regression gate: FAIL "
                    f"(> {self.fail_threshold:g}x baseline: {names})"
                )
        return "\n".join(lines) + "\n"


# -- the benchmarks -----------------------------------------------------------


def _bench_event_throughput() -> None:
    """10k-event self-re-arming timer chain (pure heap + dispatch cost)."""
    from ..sim import Simulator

    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < 10_000:
            sim.call_in(0.001, tick)

    sim.call_in(0.001, tick)
    sim.run()
    if count != 10_000:  # pragma: no cover - self-check
        raise ReproError(f"event-throughput bench ran {count} events")


def _bench_churn() -> None:
    """Interleaved push/cancel plus lazy-deletion pops (MAC timer pattern)."""
    from ..sim import Simulator

    sim = Simulator()
    keep = []
    for i in range(20_000):
        handle = sim.call_in(1.0 + (i % 997) * 1e-3, _noop)
        if i % 2:
            handle.cancel()
        else:
            keep.append(handle)
    for handle in keep[::4]:
        handle.cancel()
    sim.run()
    if sim.events_processed != 7_500:  # pragma: no cover - self-check
        raise ReproError(f"churn bench ran {sim.events_processed} events")


def _noop() -> None:
    pass


def _bench_quick_run_100() -> None:
    """100-node CAEM network advanced one full LEACH round (20 s)."""
    from ..config import NetworkConfig, Protocol
    from ..network import SensorNetwork

    cfg = NetworkConfig(n_nodes=100, protocol=Protocol.CAEM_ADAPTIVE, seed=1)
    net = SensorNetwork(cfg)
    net.run_until(20.0)
    if net.sim.events_processed <= 10_000:  # pragma: no cover - self-check
        raise ReproError("quick-run bench processed suspiciously few events")


def _bench_figure_fig8() -> None:
    """fig8 (quick preset, one seed, one load) through the full registry."""
    from .registry import get_experiment

    fig = get_experiment("fig8").run(
        preset="quick", seeds=(1,), loads_pps=(5.0,), jobs=1
    )
    fig.render()


#: (name, callable, rounds) per tier; "full" extends "quick".  The
#: committed baseline mins come from pytest-benchmark's ~1 s of warm
#: rounds, so the microbenches get enough rounds here for their best-of
#: to reach comparably warm caches/branch predictors.
_QUICK_SUITE: List = [
    ("kernel/event-throughput", _bench_event_throughput, 30),
    ("kernel/push-pop-cancel-churn", _bench_churn, 15),
    ("network/quick-run-100", _bench_quick_run_100, 3),
]
_FULL_SUITE: List = _QUICK_SUITE + [
    ("figure/fig8-quick", _bench_figure_fig8, 1),
]

TIERS: Dict[str, List] = {"quick": _QUICK_SUITE, "full": _FULL_SUITE}


# -- baseline + trajectory I/O ------------------------------------------------


def load_baseline_times(path: Path) -> Dict[str, float]:
    """Per-bench baseline seconds from a pytest-benchmark JSON file.

    Uses each benchmark's ``min`` — the same statistic ``run_bench``
    measures — keyed by our bench names via ``_BASELINE_NAMES``.  A
    missing file means "no comparison" (empty dict); a file that exists
    but cannot be parsed is a hard error, not a silent no-comparison run.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return {}
    try:
        by_test = {
            b["name"]: float(b["stats"]["min"])
            for b in doc.get("benchmarks", [])
        }
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise ReproError(
            f"baseline {path} is not pytest-benchmark JSON "
            f"(regenerate it with benchmarks/bench_kernel.py): {exc!r}"
        ) from exc
    return {
        ours: by_test[theirs]
        for ours, theirs in _BASELINE_NAMES.items()
        if theirs in by_test
    }


def _append_trajectory(path: Path, report: BenchReport) -> None:
    """Append one entry to the BENCH_run.json trajectory (a JSON list)."""
    entries: List[dict] = []
    path = Path(path)
    if path.exists():
        try:
            entries = json.loads(path.read_text())
            if not isinstance(entries, list):  # pragma: no cover - defensive
                entries = [entries]
        except json.JSONDecodeError:  # pragma: no cover - defensive
            entries = []
    entries.append(
        {
            "datetime": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "tier": report.tier,
            "results": {
                r.name: {
                    "seconds": r.seconds,
                    "rounds": r.rounds,
                    "baseline_s": r.baseline_s,
                    "speedup": r.speedup,
                }
                for r in report.results
            },
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")


# -- driver -------------------------------------------------------------------


def run_bench(
    tier: str = "full",
    baseline_path: Path = DEFAULT_BASELINE,
    trajectory_path: Optional[Path] = DEFAULT_TRAJECTORY,
    fail_threshold: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run the ``tier`` suite serially; time best-of-N; append trajectory.

    Parameters
    ----------
    tier:
        ``"quick"`` (kernel + 100-node macro run) or ``"full"`` (adds the
        figure-scale bench).
    baseline_path:
        Committed pytest-benchmark JSON to compare against (missing file
        → no comparison, never an error).
    trajectory_path:
        Where to append this run's entry; ``None`` skips persistence.
    fail_threshold:
        If set, any bench slower than ``threshold × baseline`` marks the
        report as failed (see :attr:`BenchReport.ok`).
    progress:
        Optional callable fed one line per bench as results arrive.
    """
    try:
        suite = TIERS[tier]
    except KeyError:
        raise ReproError(
            f"unknown bench tier {tier!r}; have {sorted(TIERS)}"
        ) from None
    baselines = load_baseline_times(baseline_path)
    if fail_threshold is not None:
        # A gate with nothing to compare against passes vacuously, and a
        # partially matching baseline silently drops benches from it —
        # every bench that is supposed to have a baseline must find one
        # (wrong cwd, moved baseline, renamed tests all fail loudly here).
        missing = [
            name
            for name, _, _ in suite
            if name in _BASELINE_NAMES and name not in baselines
        ]
        if missing:
            raise ReproError(
                f"--fail-threshold set but no baseline entries for "
                f"{', '.join(missing)} in {baseline_path} (run from the "
                f"repo root, or point --baseline at the committed "
                f"BENCH_kernel.json)"
            )
    report = BenchReport(tier=tier, fail_threshold=fail_threshold)
    perf_counter = time.perf_counter
    for name, fn, rounds in suite:
        best = float("inf")
        for _ in range(rounds):
            t0 = perf_counter()
            fn()
            elapsed = perf_counter() - t0
            if elapsed < best:
                best = elapsed
        result = BenchResult(
            name=name,
            seconds=best,
            rounds=rounds,
            baseline_s=baselines.get(name),
        )
        report.results.append(result)
        if progress is not None:
            speed = (
                f" ({result.speedup:.2f}x vs baseline)"
                if result.speedup is not None
                else ""
            )
            progress(f"{name}: {best:.4f}s best-of-{rounds}{speed}")
    if trajectory_path is not None:
        _append_trajectory(Path(trajectory_path), report)
    return report
