"""The canonical per-run measurement record: :class:`RunResult`.

Every simulation — whether launched through :func:`repro.api.Scenario.run`,
a :class:`repro.api.Campaign`, or the legacy
:func:`repro.experiments.run_scenario` shim — distils into one
:class:`RunResult`.  The record is a plain dataclass so it pickles across
process-pool workers and round-trips through JSON for the
:class:`repro.api.ResultStore`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunResult", "SERIES_FIELDS"]

#: RunResult fields that hold time series / per-node vectors rather than
#: scalars.  The CSV store drops these columns, and
#: :meth:`RunResult.scalar_summary` (the query/browse view) omits them.
SERIES_FIELDS = (
    "sample_times_s",
    "mean_energy_j",
    "alive_counts",
    "up_counts",
    "queue_snapshots",
    "death_times_s",
    "energy_breakdown",
)


@dataclass
class RunResult:
    """Everything measured in one simulation run.

    Delivery accounting
    -------------------
    Two delivery counters exist and the derived metrics deliberately use
    *different* denominators:

    * ``delivered`` counts packets carried over the **radio** (sensor →
      cluster head bursts).  ``energy_per_packet_j`` divides total consumed
      energy by this count only — it is the paper's Fig. 11 metric
      ("energy consumed for successfully *transmitting* one data packet");
      a cluster head's own packets are aggregated locally without any radio
      transmission and would artificially deflate a per-transmission cost.
    * ``delivered_local`` counts those locally aggregated cluster-head
      packets.  ``delivery_rate`` uses ``total_delivered`` (radio + local)
      over ``generated``, because a locally aggregated packet *has* reached
      the data sink's side of the network and counting it lost would
      understate end-to-end delivery.

    In short: energy-per-packet is a **radio-cost** metric, delivery rate
    is an **end-to-end** metric.  Both choices are intentional and
    consistent throughout the figures, benches, and stores.

    With the uplink tier enabled (``routing.mode`` of ``"direct"`` or
    ``"multihop"``) the same two rules hold with the sink moved to the end
    of the relay stack: ``delivered`` counts packets that *reached the
    network sink* over the air (members' and heads' own packets alike, so
    ``delivered_local`` stays 0), and the ``uplink_*`` fields break down
    what the relay stack lost in transit.  ``cluster_delivered`` counts
    member→head hop completions (the relay ingress), so the cluster hop
    remains observable even though it no longer terminates delivery.
    """

    protocol: str
    seed: int
    load_pps: float
    horizon_s: float
    #: Network size the run simulated (informational; 0 in legacy
    #: stores).  Store-to-scenario pairing is discriminated by
    #: ``config_digest`` below, which covers this and every other config
    #: field.
    n_nodes: int = 0
    #: SHA-256 of the full NetworkConfig that produced this run (stamped
    #: by the engine).  The decisive store-resolution discriminator:
    #: sweep cells that differ only inside a sub-config (churn rate,
    #: sink position, relay mode, ...) share every scalar coordinate
    #: above, and matching on the digest refuses a mis-pair loudly
    #: instead of silently pairing stored runs by file order.  Empty
    #: only in legacy stores, which are refused at re-render.
    config_digest: str = ""
    #: Name of the registered experiment that produced this run (stamped
    #: by the figure harness); None for ad-hoc Scenario/Campaign runs.
    #: Stores use it to refuse re-rendering one experiment's table from
    #: another experiment's runs.
    experiment: Optional[str] = None
    # Time series.
    sample_times_s: List[float] = field(default_factory=list)
    mean_energy_j: List[float] = field(default_factory=list)
    alive_counts: List[int] = field(default_factory=list)
    queue_snapshots: List[List[int]] = field(default_factory=list)
    # Scalars.
    death_times_s: List[Optional[float]] = field(default_factory=list)
    lifetime_s: Optional[float] = None
    first_death_s: Optional[float] = None
    death_spread_s: Optional[float] = None
    generated: int = 0
    delivered: int = 0
    delivered_local: int = 0
    lost_channel: int = 0
    dropped_overflow: int = 0
    dropped_retry: int = 0
    collisions: int = 0
    total_consumed_j: float = 0.0
    #: Radio energy cost: ``total_consumed_j / delivered`` (radio only —
    #: see the class docstring's "Delivery accounting").
    energy_per_packet_j: Optional[float] = None
    mean_delay_s: float = 0.0
    #: End-to-end delay distribution markers (None until any delivery).
    delay_p50_s: Optional[float] = None
    delay_p90_s: Optional[float] = None
    delay_p99_s: Optional[float] = None
    throughput_bps: float = 0.0
    # Uplink tier (all zero/None while routing.mode == "local").
    cluster_delivered: int = 0
    uplink_lost_channel: int = 0
    uplink_dropped_retry: int = 0
    uplink_dropped_overflow: int = 0
    uplink_stranded: int = 0
    #: Mean radio hops per sink delivery (0.0 while routing is disabled).
    mean_hop_count: float = 0.0
    #: Energy ledgered to the long-haul hops (uplink_tx + uplink_rx), J.
    uplink_energy_j: float = 0.0
    # Dynamics.  The counters and series below are identically
    # zero/None/empty while the dynamics block is off;
    # ``lifetime_effective_s`` and ``delivery_rate_offered`` are always
    # computed and *collapse to* ``lifetime_s`` / ``delivery_rate`` on a
    # churn-free run — filter dynamics runs by ``churn_failures`` or
    # ``up_counts``, not by these two.
    #: Operational-node counts sampled alongside ``alive_counts`` (an
    #: "up" node has battery left *and* is not churn-failed); collected
    #: only when dynamics are enabled.
    up_counts: List[int] = field(default_factory=list)
    #: Applied churn failures / recoveries and regime shifts.
    churn_failures: int = 0
    churn_recoveries: int = 0
    regime_shifts: int = 0
    #: Packets lost with the volatile memory of churn-failed nodes.
    orphaned: int = 0
    #: Time of the first applied churn failure (None: no churn).
    first_failure_s: Optional[float] = None
    #: Churn-aware lifetime: like ``lifetime_s`` but a node that was down
    #: at the end of the run (failed, never recovered) counts as dead at
    #: its last failure time.  Equal to ``lifetime_s`` without churn.
    lifetime_effective_s: Optional[float] = None
    #: Churn-aware delivery: ``total_delivered / (generated - orphaned)``
    #: — the denominator excludes packets that died *with their node*
    #: and were never the protocol's to deliver.  Equal to
    #: ``delivery_rate`` when nothing was orphaned.
    delivery_rate_offered: Optional[float] = None
    #: Delivered payload bits/s credited to nodes still up at the end of
    #: the run — what the surviving network actually sustained.
    survivor_throughput_bps: float = 0.0
    #: End-to-end delivery: ``total_delivered / generated`` (radio + local
    #: — see the class docstring's "Delivery accounting").
    delivery_rate: Optional[float] = None
    energy_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Kernel callbacks executed — a deterministic size/work proxy the
    #: scale experiment reports alongside wall time.
    events_processed: int = 0
    #: Decimation factor of the stored time series (1 = exact; > 1 when
    #: RunOptions.max_series_samples bounded the series — samples are
    #: ``stride`` base intervals apart).
    series_stride: int = 1
    wall_time_s: float = 0.0

    @property
    def total_delivered(self) -> int:
        """Radio + local deliveries (the ``delivery_rate`` numerator)."""
        return self.delivered + self.delivered_local

    # -- dict / JSON round-trip ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to a JSON-serialisable dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    def scalar_summary(self) -> Dict[str, Any]:
        """Scalar-only view (series dropped) for query/browse output.

        This is what ``repro-caem query`` prints and what the campaign
        server's ``/runs`` endpoint returns per row — the full record
        (series included) stays available via :meth:`to_dict`.
        """
        data = self.to_dict()
        for name in SERIES_FIELDS:
            data.pop(name, None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are ignored (forward compatibility with stores written
        by newer versions); missing optional fields fall back to their
        defaults, so lossy scalar-only CSV rows load too.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        return cls(**kwargs)
