"""Pluggable experiment registry.

Experiments — the paper's figures and tables, and any extension study —
register themselves with the :func:`experiment` decorator::

    @experiment("fig9", kind="figure")
    def fig9_nodes_alive(preset="quick", seeds=(1,), jobs=1):
        ...

and the CLI (``repro-caem list`` / ``repro-caem run <name>``), the
benches, and external scripts discover them through :func:`get_experiment`
/ :func:`list_experiments`.  The registry dispatches only the keyword
arguments an experiment actually declares (``spec.run`` inspects the
signature), so tables that take no preset and figures that take loads
coexist behind one calling convention.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import ExperimentError

__all__ = ["ExperimentSpec", "experiment", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: name, callable, and display metadata."""

    name: str
    fn: Callable[..., Any]
    #: Category shown by ``repro-caem list``: "figure", "table", "extension".
    kind: str = "figure"
    #: One-line human summary (defaults to the callable's first doc line).
    summary: str = ""

    def to_dict(self) -> Dict[str, str]:
        """JSON-safe metadata view (the campaign server's ``/experiments``)."""
        return {"name": self.name, "kind": self.kind, "summary": self.summary}

    def accepts(self, option: str) -> bool:
        """Does the underlying callable declare this keyword option?"""
        params = inspect.signature(self.fn).parameters
        if any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in params.values()):
            return True
        return option in params

    def run(self, **options: Any) -> Any:
        """Invoke the experiment with the subset of options it declares."""
        kwargs = {k: v for k, v in options.items()
                  if v is not None and self.accepts(k)}
        return self.fn(**kwargs)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def experiment(
    name: str,
    kind: str = "figure",
    summary: Optional[str] = None,
) -> Callable[[Callable], Callable]:
    """Class-of-2005 figures and future workloads alike register here.

    Re-registering the *same* function under the same name (module
    reloads, doctest imports) is a no-op; registering a different
    function under an existing name raises — shadowing an experiment
    silently would corrupt ``run all``.
    """

    def decorate(fn: Callable) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None and (
            existing.fn.__module__ != fn.__module__
            or existing.fn.__qualname__ != fn.__qualname__
        ):
            raise ExperimentError(
                f"experiment {name!r} already registered by "
                f"{existing.fn.__module__}.{existing.fn.__qualname__}"
            )
        doc = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            fn=fn,
            kind=kind,
            summary=summary if summary is not None else (doc[0] if doc else ""),
        )
        return fn

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one experiment (imports the built-ins on first use)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ExperimentError(
            f"unknown experiment {name!r}; registered: {known}"
        ) from None


def list_experiments(kind: Optional[str] = None) -> List[ExperimentSpec]:
    """All registered experiments, sorted by (kind, name)."""
    _ensure_builtins()
    specs = [s for s in _REGISTRY.values() if kind is None or s.kind == kind]
    return sorted(specs, key=lambda s: (s.kind, s.name))


def _ensure_builtins() -> None:
    """Import the modules whose decorators populate the registry."""
    from ..experiments import dynamics, figures, scale, tables, uplink  # noqa: F401
