"""Result persistence: append :class:`RunResult` rows, reload them later.

A :class:`ResultStore` lets a campaign's raw runs outlive the process so
figures and tables can be re-rendered without re-simulating::

    store = ResultStore("results/fig10.jsonl")
    campaign.run(jobs=8, store=store)
    ...                                  # later / elsewhere
    runs = ResultStore("results/fig10.jsonl").load()

Two flat-file formats, chosen by file suffix:

* ``.jsonl`` — one JSON object per line, full fidelity (time series
  included); round-trips exactly through
  :meth:`RunResult.to_dict`/:meth:`RunResult.from_dict`.
* ``.csv`` — scalar columns only (time series are dropped), for
  spreadsheet-style analysis.  Loading restores the scalars and leaves
  the series empty.

(The SQLite-backed :class:`repro.service.DbResultStore` implements the
same append/extend/load/iterate interface with indexed reads; use
:func:`repro.service.open_store` to pick the backend by suffix.)

Durability: JSONL appends are write-then-flush-then-fsync, and the reader
tolerates a torn trailing record (a writer killed mid-append leaves a
partial last line with no newline — it is skipped, every completed row
before it loads).  A corrupt record *inside* the file still fails loudly.

Every written row carries ``format_version`` (see
:data:`STORE_FORMAT_VERSION`); reading a store written by an incompatible
(newer) version raises an :class:`~repro.errors.ExperimentError` with an
upgrade hint instead of a ``KeyError`` deep in re-rendering.  Rows with no
version field are pre-versioning stores (format 1 layout) and load fine.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Sequence, Union

from ..errors import ExperimentError
from .result import RunResult, SERIES_FIELDS

__all__ = ["ResultStore", "STORE_FORMAT_VERSION", "check_format_version"]

#: Version stamped into every row this build writes.  Bump when the row
#: layout changes incompatibly (renamed/retyped fields); readers refuse
#: rows from a *newer* format loudly.
STORE_FORMAT_VERSION = 1

#: RunResult fields exported to CSV (scalars only, in declaration order).
_SCALAR_FIELDS = [
    f.name
    for f in dataclasses.fields(RunResult)
    if f.name not in SERIES_FIELDS
]

_INT_FIELDS = {
    f.name for f in dataclasses.fields(RunResult)
    if f.type in ("int", int)
}
_STRING_FIELDS = {"protocol", "experiment", "config_digest"}
_FLOAT_FIELDS = {
    f.name for f in dataclasses.fields(RunResult)
    if f.name in _SCALAR_FIELDS and f.name not in _INT_FIELDS
    and f.name not in _STRING_FIELDS
}


def _active_faults():
    """The ambient fault injector (chaos tests), or ``None``.

    Imported lazily so the api layer only touches the service tier when
    a fault plan is actually active-able; the production path is one
    environment lookup.
    """
    from ..service.faults import active_faults

    return active_faults()


def check_format_version(value: Any, source: Union[str, Path]) -> None:
    """Refuse rows written by an incompatible store format, loudly.

    ``None`` (no ``format_version`` field) means a pre-versioning store,
    whose layout is format 1 — accepted.  Anything newer than this build's
    :data:`STORE_FORMAT_VERSION` gets the upgrade hint instead of a
    ``KeyError`` when re-rendering reaches a field that moved.
    """
    if value is None:
        return
    try:
        version = int(value)
    except (TypeError, ValueError):
        raise ExperimentError(
            f"store {source} carries a malformed format_version "
            f"{value!r} (expected an integer)"
        ) from None
    if version < 1 or version > STORE_FORMAT_VERSION:
        raise ExperimentError(
            f"store {source} was written with format version {version}, "
            f"but this build reads versions 1..{STORE_FORMAT_VERSION} — "
            f"upgrade repro (pip install -U) to read it, or re-run the "
            f"campaign with this build to regenerate the store"
        )


class ResultStore:
    """Append-only store of :class:`RunResult` rows at one path."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        suffix = self.path.suffix.lower()
        if suffix not in (".jsonl", ".csv"):
            raise ExperimentError(
                f"unsupported store format {suffix!r} (use .jsonl or .csv, "
                f"or .sqlite via repro.service.open_store)"
            )
        self.format = suffix[1:]

    # -- writing ---------------------------------------------------------------

    def append(self, run: RunResult) -> None:
        """Append one run (creates the file, and for CSV the header)."""
        self.extend([run])

    def extend(self, runs: Sequence[RunResult]) -> None:
        """Append many runs with a single open/write/fsync.

        The fsync makes the append crash-safe: once ``extend`` returns,
        the rows survive a killed process or a power cut, and a crash
        *during* the write leaves at most one torn trailing line, which
        the reader skips (earlier rows stay loadable).
        """
        if not runs:
            return
        faults = _active_faults()
        fault_key = (
            f"{runs[0].config_digest}|{runs[0].protocol}|"
            f"{runs[0].load_pps!r}|{runs[0].seed}|{len(runs)}"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.format == "jsonl":
            with self.path.open("a") as fh:
                lines = []
                for run in runs:
                    row = run.to_dict()
                    row["format_version"] = STORE_FORMAT_VERSION
                    lines.append(json.dumps(row) + "\n")
                if faults is not None and faults.torn_write(fault_key):
                    # Injected power-cut: all but the last record land,
                    # the last stops mid-line with no newline — exactly
                    # the torn tail the reader knows how to skip.
                    fh.write("".join(lines[:-1]))
                    fh.write(lines[-1][: max(1, len(lines[-1]) // 2)])
                    fh.flush()
                    os.fsync(fh.fileno())
                    from ..service.faults import InjectedFault

                    raise InjectedFault(
                        f"injected torn JSONL append "
                        f"(site=store.torn_write key={fault_key})"
                    )
                fh.write("".join(lines))
                fh.flush()
                if faults is not None:
                    faults.check_fsync(fault_key)
                os.fsync(fh.fileno())
        else:
            new_file = not self.path.exists() or self.path.stat().st_size == 0
            with self.path.open("a", newline="") as fh:
                writer = csv.writer(fh)
                if new_file:
                    writer.writerow(_SCALAR_FIELDS + ["format_version"])
                for run in runs:
                    row = run.to_dict()
                    writer.writerow(
                        ["" if row[name] is None else row[name]
                         for name in _SCALAR_FIELDS]
                        + [STORE_FORMAT_VERSION]
                    )
                fh.flush()
                os.fsync(fh.fileno())

    # -- reading ---------------------------------------------------------------

    def load(self) -> List[RunResult]:
        """Read every stored run back (empty list if the file is absent)."""
        return list(self)

    def __iter__(self) -> Iterator[RunResult]:
        if not self.path.exists():
            return
        if self.format == "jsonl":
            yield from self._iter_jsonl()
        else:
            yield from self._iter_csv()

    def _iter_jsonl(self) -> Iterator[RunResult]:
        with self.path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    data = json.loads(stripped)
                except ValueError:
                    if not line.endswith("\n"):
                        # Torn trailing record: the writer died mid-append
                        # (extend() only completes lines).  Every finished
                        # row before it is good — serve those.
                        return
                    raise ExperimentError(
                        f"corrupt record at {self.path}:{lineno} — the "
                        f"store is damaged mid-file (not a torn tail); "
                        f"re-run the campaign or trim the file manually"
                    ) from None
                check_format_version(
                    data.pop("format_version", None), self.path
                )
                yield RunResult.from_dict(data)

    def _iter_csv(self) -> Iterator[RunResult]:
        with self.path.open(newline="") as fh:
            for row in csv.DictReader(fh):
                check_format_version(
                    (row.pop("format_version", None) or None), self.path
                )
                data: Dict[str, Any] = {}
                for name, raw in row.items():
                    if raw == "" or raw is None:
                        continue
                    if name in _INT_FIELDS:
                        data[name] = int(raw)
                    elif name in _FLOAT_FIELDS:
                        data[name] = float(raw)
                    else:
                        data[name] = raw
                yield RunResult.from_dict(data)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.path)!r}, format={self.format!r})"
