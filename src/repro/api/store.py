"""Result persistence: append :class:`RunResult` rows, reload them later.

A :class:`ResultStore` lets a campaign's raw runs outlive the process so
figures and tables can be re-rendered without re-simulating::

    store = ResultStore("results/fig10.jsonl")
    campaign.run(jobs=8, store=store)
    ...                                  # later / elsewhere
    runs = ResultStore("results/fig10.jsonl").load()

Two formats, chosen by file suffix:

* ``.jsonl`` — one JSON object per line, full fidelity (time series
  included); round-trips exactly through
  :meth:`RunResult.to_dict`/:meth:`RunResult.from_dict`.
* ``.csv`` — scalar columns only (time series are dropped), for
  spreadsheet-style analysis.  Loading restores the scalars and leaves
  the series empty.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Iterator, List, Sequence, Union

from ..errors import ExperimentError
from .result import RunResult

__all__ = ["ResultStore"]

#: RunResult fields exported to CSV (scalars only, in declaration order).
_SCALAR_FIELDS = [
    f.name
    for f in dataclasses.fields(RunResult)
    if f.name not in (
        "sample_times_s", "mean_energy_j", "alive_counts", "up_counts",
        "queue_snapshots", "death_times_s", "energy_breakdown",
    )
]

_INT_FIELDS = {
    f.name for f in dataclasses.fields(RunResult)
    if f.type in ("int", int)
}
_STRING_FIELDS = {"protocol", "experiment", "config_digest"}
_FLOAT_FIELDS = {
    f.name for f in dataclasses.fields(RunResult)
    if f.name in _SCALAR_FIELDS and f.name not in _INT_FIELDS
    and f.name not in _STRING_FIELDS
}


class ResultStore:
    """Append-only store of :class:`RunResult` rows at one path."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        suffix = self.path.suffix.lower()
        if suffix not in (".jsonl", ".csv"):
            raise ExperimentError(
                f"unsupported store format {suffix!r} (use .jsonl or .csv)"
            )
        self.format = suffix[1:]

    # -- writing ---------------------------------------------------------------

    def append(self, run: RunResult) -> None:
        """Append one run (creates the file, and for CSV the header)."""
        self.extend([run])

    def extend(self, runs: Sequence[RunResult]) -> None:
        """Append many runs with a single open/write."""
        if not runs:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.format == "jsonl":
            with self.path.open("a") as fh:
                for run in runs:
                    fh.write(json.dumps(run.to_dict()) + "\n")
        else:
            new_file = not self.path.exists() or self.path.stat().st_size == 0
            with self.path.open("a", newline="") as fh:
                writer = csv.writer(fh)
                if new_file:
                    writer.writerow(_SCALAR_FIELDS)
                for run in runs:
                    row = run.to_dict()
                    writer.writerow(
                        ["" if row[name] is None else row[name]
                         for name in _SCALAR_FIELDS]
                    )

    # -- reading ---------------------------------------------------------------

    def load(self) -> List[RunResult]:
        """Read every stored run back (empty list if the file is absent)."""
        return list(self)

    def __iter__(self) -> Iterator[RunResult]:
        if not self.path.exists():
            return
        if self.format == "jsonl":
            with self.path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        yield RunResult.from_dict(json.loads(line))
        else:
            with self.path.open(newline="") as fh:
                for row in csv.DictReader(fh):
                    data: dict = {}
                    for name, raw in row.items():
                        if raw == "" or raw is None:
                            continue
                        if name in _INT_FIELDS:
                            data[name] = int(raw)
                        elif name in _FLOAT_FIELDS:
                            data[name] = float(raw)
                        else:
                            data[name] = raw
                    yield RunResult.from_dict(data)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.path)!r}, format={self.format!r})"
