"""Fluent scenario builder: *what* to simulate plus *how* to observe it.

A :class:`Scenario` bundles a validated :class:`~repro.config.NetworkConfig`
with the run options (:class:`~repro.api.engine.RunOptions`) and optional
free-form tags.  Scenarios are frozen — every ``with_*`` method returns a
new object — so they are safe to fan out across processes and to reuse as
grid templates:

>>> from repro.api import Scenario
>>> from repro.config import Protocol
>>> s = (Scenario.from_preset("smoke", Protocol.CAEM_ADAPTIVE)
...      .with_load(10.0).with_seed(3).with_runtime(horizon_s=20.0))
>>> s.config.traffic.packets_per_second
10.0
>>> result = s.run()  # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from ..config import NetworkConfig, Protocol
from ..errors import ExperimentError
from .engine import RunOptions, simulate
from .result import RunResult

__all__ = ["Scenario"]

#: NetworkConfig sub-config sections addressable via :meth:`Scenario.with_sub`.
_SECTIONS = (
    "channel", "phy", "energy", "tone", "mac", "leach", "traffic", "policy",
    "routing", "dynamics",
)


@dataclass(frozen=True)
class Scenario:
    """One fully specified, independently executable simulation run."""

    config: NetworkConfig = field(default_factory=NetworkConfig)
    options: RunOptions = field(default_factory=RunOptions)
    #: Free-form labels (experiment name, grid coordinates, ...) carried
    #: along for bookkeeping; never consulted by the engine.
    tags: Mapping[str, Any] = field(default_factory=dict)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_preset(
        cls,
        preset: str,
        protocol: Protocol = Protocol.CAEM_ADAPTIVE,
        load_pps: float = 5.0,
        seed: int = 1,
    ) -> "Scenario":
        """Build from an experiment tier ("full" / "quick" / "smoke").

        Run options default to the tier's fixed-window horizon and sample
        cadence; override with :meth:`with_runtime`.
        """
        from ..experiments.presets import get_preset

        tier = get_preset(preset)
        return cls(
            config=tier.config(protocol, load_pps, seed),
            options=RunOptions(
                horizon_s=tier.energy_horizon_s,
                sample_interval_s=tier.sample_interval_s,
            ),
            tags={"preset": preset},
        )

    # -- config overrides (each returns a new Scenario) ------------------------

    def with_(self, **changes: Any) -> "Scenario":
        """Replace top-level :class:`NetworkConfig` fields (n_nodes, ...)."""
        return dataclasses.replace(self, config=self.config.with_(**changes))

    def with_sub(self, section: str, **changes: Any) -> "Scenario":
        """Replace fields of one config section, e.g. ``with_sub("mac", max_retries=2)``."""
        if section not in _SECTIONS:
            raise ExperimentError(
                f"unknown config section {section!r}; have {_SECTIONS}"
            )
        sub = dataclasses.replace(getattr(self.config, section), **changes)
        return dataclasses.replace(
            self, config=self.config.with_(**{section: sub})
        )

    def with_traffic(self, **changes: Any) -> "Scenario":
        """Replace traffic fields (``packets_per_second``, ``buffer_packets``, ...)."""
        return self.with_sub("traffic", **changes)

    def with_protocol(self, protocol: Protocol) -> "Scenario":
        """Run a different protocol on an otherwise identical scenario."""
        return self.with_(protocol=protocol)

    def with_dynamics(self, **changes: Any) -> "Scenario":
        """Inject network dynamics (``failure_rate_hz``,
        ``battery_jitter``, ``regime_mean_interval_s``, ...); see
        :class:`~repro.config.DynamicsConfig`."""
        return self.with_sub("dynamics", **changes)

    def with_seed(self, seed: int) -> "Scenario":
        """Re-seed the master RNG (every stream derives from this)."""
        return self.with_(seed=seed)

    def with_load(self, packets_per_second: float) -> "Scenario":
        """Set the per-node offered load."""
        return self.with_traffic(packets_per_second=packets_per_second)

    def with_runtime(self, **changes: Any) -> "Scenario":
        """Replace run options: ``horizon_s``, ``sample_interval_s``,
        ``stop_when_dead``, ``collect_queues``."""
        return dataclasses.replace(
            self, options=dataclasses.replace(self.options, **changes)
        )

    def tagged(self, **tags: Any) -> "Scenario":
        """Attach/override bookkeeping tags."""
        merged: Dict[str, Any] = {**self.tags, **tags}
        return dataclasses.replace(self, tags=merged)

    # -- execution -------------------------------------------------------------

    def run(self, tracer=None) -> RunResult:
        """Execute this scenario in-process and return its record."""
        return simulate(self.config, self.options, tracer=tracer)

    # -- introspection ---------------------------------------------------------

    def describe(self) -> str:
        """One-line human summary (used by Campaign progress logs)."""
        c = self.config
        return (
            f"{c.protocol.value} n={c.n_nodes} "
            f"load={c.traffic.packets_per_second:g}pps seed={c.seed} "
            f"horizon={self.options.horizon_s:g}s"
        )
