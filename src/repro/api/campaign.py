"""Campaigns: expand a scenario grid and execute it at any parallelism.

A :class:`Campaign` turns one template :class:`~repro.api.Scenario` plus a
set of axes (protocol × load × seed × any config field) into an ordered
work list, and runs it through a pluggable executor — in-process serial or
a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out (``jobs=N``).

Because every work item is fully specified by its frozen scenario (all
randomness derives from ``config.seed``), the results are **bit-identical
at any parallelism**: ``jobs=4`` returns exactly what ``jobs=1`` returns,
in the same order, only faster.

>>> from repro.api import Campaign, Scenario
>>> from repro.config import Protocol
>>> camp = (Campaign(Scenario.from_preset("smoke"))
...         .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE],
...               load_pps=[5.0, 15.0])
...         .seeds([1, 2]))
>>> len(camp)
8
>>> result = camp.run(jobs=4)  # doctest: +SKIP
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config import NetworkConfig, Protocol
from ..errors import ExperimentError
from .result import RunResult
from .scenario import Scenario, _SECTIONS

__all__ = [
    "Campaign",
    "CampaignResult",
    "run_scenarios",
    "default_jobs",
    "use_run_cache",
    "active_run_cache",
    "NO_CACHE",
]

_TOP_FIELDS = {f.name for f in dataclasses.fields(NetworkConfig)}

#: Sentinel for ``run_scenarios(cache=NO_CACHE)``: force plain execution
#: even when a cache is active in the calling context (the cache itself
#: uses this to simulate its misses without recursing).
NO_CACHE = object()

#: The ambient run cache (see :func:`use_run_cache`).  A ContextVar so
#: the campaign server's worker threads can each activate their own cache
#: without interfering.
_ACTIVE_CACHE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_run_cache", default=None
)


@contextlib.contextmanager
def use_run_cache(cache):
    """Route every :func:`run_scenarios` call in this context through
    ``cache`` (a :class:`repro.service.RunCache`): cells whose config
    digest already has a stored row are served from the result database,
    only the misses are simulated.  The CLI's ``--cache`` flag and the
    campaign server both wrap execution in this.
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


def active_run_cache():
    """The cache installed by :func:`use_run_cache`, or ``None``."""
    return _ACTIVE_CACHE.get()


def default_jobs() -> int:
    """Honour ``REPRO_JOBS`` if set, else 1 (serial — always safe)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _execute(scenario: Scenario) -> RunResult:
    """Top-level (picklable) worker body: run one scenario."""
    return scenario.run()


def run_scenarios(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    store=None,
    progress: Optional[Callable[[int, int, Scenario], None]] = None,
    experiment: Optional[str] = None,
    cache=None,
) -> List[RunResult]:
    """Execute ``scenarios`` and return their results **in input order**.

    ``jobs <= 1`` runs serially in-process; ``jobs > 1`` fans out over a
    process pool.  Either way the returned list lines up index-for-index
    with the input, and each result is bit-identical across backends
    (determinism is per-scenario, not per-schedule).  ``store`` — any
    object with an ``append(RunResult)`` method, e.g. a
    :class:`~repro.api.store.ResultStore` — receives every result as it is
    collected (in order), so an interrupted campaign keeps the runs that
    finished.

    ``experiment`` stamps every result's :attr:`RunResult.experiment`
    *before* it reaches the store, so persisted rows carry their
    provenance.  ``cache`` overrides the ambient run cache: ``None``
    consults :func:`active_run_cache`, :data:`NO_CACHE` forces plain
    execution, anything else is used as the cache for this call.
    """
    scenarios = list(scenarios)
    if cache is None:
        cache = active_run_cache()
    if cache is not None and cache is not NO_CACHE:
        return cache.execute(
            scenarios, jobs=jobs, store=store, progress=progress,
            experiment=experiment,
        )
    results: List[RunResult] = []

    def collect(run: RunResult) -> None:
        if experiment is not None:
            run.experiment = experiment
        results.append(run)
        if store is not None:
            store.append(run)

    if jobs <= 1 or len(scenarios) <= 1:
        for i, sc in enumerate(scenarios):
            if progress is not None:
                progress(i, len(scenarios), sc)
            collect(_execute(sc))
    else:
        workers = min(jobs, len(scenarios))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves input order; chunksize=1 keeps the work
            # queue balanced when run lengths vary wildly (lifetime runs).
            for i, run in enumerate(pool.map(_execute, scenarios, chunksize=1)):
                if progress is not None:
                    progress(i, len(scenarios), scenarios[i])
                collect(run)
    return results


@dataclass
class CampaignResult:
    """An executed campaign: scenarios and their results, index-aligned."""

    scenarios: List[Scenario] = dc_field(default_factory=list)
    runs: List[RunResult] = dc_field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[Tuple[Scenario, RunResult]]:
        return iter(zip(self.scenarios, self.runs))

    def select(self, **tags: Any) -> List[RunResult]:
        """Results whose scenario tags match every given key=value."""
        return [
            run
            for sc, run in zip(self.scenarios, self.runs)
            if all(sc.tags.get(k) == v for k, v in tags.items())
        ]

    def column(self, metric: Callable[[RunResult], Any]) -> List[Any]:
        """Apply ``metric`` to every run, in campaign order."""
        return [metric(run) for run in self.runs]


class Campaign:
    """A scenario grid builder plus its executor front-end.

    Axes added via :meth:`over` multiply: each call refines the grid by
    taking the cross product with the new axis.  Axis names resolve, in
    order, to the builder knobs ``protocol`` / ``load_pps`` / ``seed``, to
    any top-level :class:`NetworkConfig` field, or to a dotted config path
    like ``"mac.max_retries"`` / ``"traffic.buffer_packets"``.
    """

    def __init__(self, base: Optional[Scenario] = None, name: str = "campaign"):
        self.base = base or Scenario()
        self.name = name
        self._axes: List[Tuple[str, List[Any]]] = []
        self._extra: List[Scenario] = []

    # -- grid construction -----------------------------------------------------

    def over(self, **axes: Sequence[Any]) -> "Campaign":
        """Add grid axes; values of each axis must be a non-empty sequence."""
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ExperimentError(f"axis {name!r} needs at least one value")
            self._apply(self.base, name, values[0])  # fail fast on bad names
            self._axes.append((name, values))
        return self

    def seeds(self, seeds: Sequence[int]) -> "Campaign":
        """Replicate the whole grid over these master seeds."""
        return self.over(seed=list(seeds))

    def add(self, scenario: Scenario) -> "Campaign":
        """Append one off-grid scenario to the work list."""
        self._extra.append(scenario)
        return self

    @staticmethod
    def _apply(scenario: Scenario, name: str, value: Any) -> Scenario:
        """Apply one axis setting to a scenario."""
        if name == "protocol":
            return scenario.with_protocol(Protocol(value) if isinstance(value, str) else value)
        if name == "load_pps":
            return scenario.with_load(float(value))
        if name == "seed":
            return scenario.with_seed(int(value))
        if name in _TOP_FIELDS:
            return scenario.with_(**{name: value})
        if "." in name:
            section, _, fld = name.partition(".")
            if section in _SECTIONS:
                return scenario.with_sub(section, **{fld: value})
        raise ExperimentError(
            f"unknown campaign axis {name!r}: expected protocol/load_pps/seed, "
            f"a NetworkConfig field, or a dotted path like 'mac.max_retries'"
        )

    def scenarios(self) -> List[Scenario]:
        """Expand the grid into the ordered, tagged work list."""
        if not self._axes:
            grid = [self.base]
        else:
            names = [n for n, _ in self._axes]
            grid = []
            for combo in itertools.product(*(vals for _, vals in self._axes)):
                sc = self.base
                for name, value in zip(names, combo):
                    sc = self._apply(sc, name, value)
                grid.append(sc.tagged(campaign=self.name,
                                      **dict(zip(names, combo))))
        return grid + list(self._extra)

    def __len__(self) -> int:
        n = 1
        for _, vals in self._axes:
            n *= len(vals)
        return (n if self._axes else 1) + len(self._extra)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        jobs: Optional[int] = None,
        store=None,
        progress: Optional[Callable[[int, int, Scenario], None]] = None,
        cache=None,
    ) -> CampaignResult:
        """Execute the whole grid and return the index-aligned results.

        ``jobs=None`` falls back to :func:`default_jobs` (the ``REPRO_JOBS``
        environment variable, else serial).  ``cache`` — a
        :class:`repro.service.RunCache` — serves already-stored cells
        from its result database and simulates only the rest (results are
        identical either way; see the cache's ``stats``).
        """
        scenarios = self.scenarios()
        if not scenarios:
            raise ExperimentError("campaign has no scenarios")
        runs = run_scenarios(
            scenarios,
            jobs=default_jobs() if jobs is None else jobs,
            store=store,
            progress=progress,
            cache=cache,
        )
        return CampaignResult(scenarios=scenarios, runs=runs)
