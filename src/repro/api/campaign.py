"""Campaigns: expand a scenario grid and execute it at any parallelism.

A :class:`Campaign` turns one template :class:`~repro.api.Scenario` plus a
set of axes (protocol × load × seed × any config field) into an ordered
work list, and runs it through a pluggable executor — in-process serial or
a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out (``jobs=N``).

Because every work item is fully specified by its frozen scenario (all
randomness derives from ``config.seed``), the results are **bit-identical
at any parallelism**: ``jobs=4`` returns exactly what ``jobs=1`` returns,
in the same order, only faster.

>>> from repro.api import Campaign, Scenario
>>> from repro.config import Protocol
>>> camp = (Campaign(Scenario.from_preset("smoke"))
...         .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE],
...               load_pps=[5.0, 15.0])
...         .seeds([1, 2]))
>>> len(camp)
8
>>> result = camp.run(jobs=4)  # doctest: +SKIP
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import heapq
import itertools
import os
import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config import NetworkConfig, Protocol
from ..errors import ExperimentError
from .result import RunResult
from .scenario import Scenario, _SECTIONS

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignIncompleteError",
    "CellFailure",
    "SupervisorConfig",
    "run_scenarios",
    "default_jobs",
    "use_run_cache",
    "active_run_cache",
    "use_supervisor",
    "active_supervisor",
    "NO_CACHE",
]

_TOP_FIELDS = {f.name for f in dataclasses.fields(NetworkConfig)}

#: Sentinel for ``run_scenarios(cache=NO_CACHE)``: force plain execution
#: even when a cache is active in the calling context (the cache itself
#: uses this to simulate its misses without recursing).
NO_CACHE = object()

#: The ambient run cache (see :func:`use_run_cache`).  A ContextVar so
#: the campaign server's worker threads can each activate their own cache
#: without interfering.
_ACTIVE_CACHE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_run_cache", default=None
)


@contextlib.contextmanager
def use_run_cache(cache):
    """Route every :func:`run_scenarios` call in this context through
    ``cache`` (a :class:`repro.service.RunCache`): cells whose config
    digest already has a stored row are served from the result database,
    only the misses are simulated.  The CLI's ``--cache`` flag and the
    campaign server both wrap execution in this.
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


def active_run_cache():
    """The cache installed by :func:`use_run_cache`, or ``None``."""
    return _ACTIVE_CACHE.get()


#: The ambient supervisor (see :func:`use_supervisor`).
_ACTIVE_SUPERVISOR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_supervisor", default=None
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerant execution policy for :func:`run_scenarios`.

    When a supervisor is active, every grid cell runs in its **own
    worker process** under a wall-clock watchdog: a worker that crashes
    (any hard death — segfault, OOM kill, injected ``os._exit``), raises,
    or exceeds ``cell_timeout_s`` is retried with capped exponential
    backoff (+deterministic jitter, so tests replay exactly), up to
    ``max_attempts`` total attempts.  A cell that exhausts its attempts
    is *quarantined*: recorded (with its traceback) in the campaign
    manifest when one is attached, and either reported via
    :class:`CampaignIncompleteError` (the default) or returned as a
    ``None`` slot when ``allow_partial`` — never silently dropped,
    never an infinite hang.
    """

    #: Per-cell wall-clock watchdog; ``None`` = no timeout.
    cell_timeout_s: Optional[float] = None
    #: Total attempts per cell (first try + retries).
    max_attempts: int = 3
    #: First retry delay; doubles per retry up to :attr:`backoff_cap_s`.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    #: Return ``None`` slots for quarantined cells instead of raising.
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ExperimentError("cell_timeout_s must be > 0 (or None)")
        if self.max_attempts < 1:
            raise ExperimentError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ExperimentError("backoff delays must be >= 0")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """The deterministic retry delay after ``attempt`` failed.

        Capped exponential with jitter in [50%, 100%] of the nominal
        delay; a pure function of ``(seed, index, attempt)`` so recovery
        schedules replay identically in tests.
        """
        nominal = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        rng = random.Random(
            self.seed * 1_000_003 + index * 10_007 + attempt
        )
        return nominal * (0.5 + rng.random() / 2)


@contextlib.contextmanager
def use_supervisor(config: SupervisorConfig):
    """Route every :func:`run_scenarios` call in this context through the
    fault-tolerant supervised executor (watchdog + retry + quarantine).
    The CLI's ``--resume`` / ``--retries`` / ``--cell-timeout`` flags and
    the campaign server install one of these, so registered experiments
    gain crash recovery without signature changes — the same ambient
    pattern as :func:`use_run_cache`.
    """
    token = _ACTIVE_SUPERVISOR.set(config)
    try:
        yield config
    finally:
        _ACTIVE_SUPERVISOR.reset(token)


def active_supervisor() -> Optional[SupervisorConfig]:
    """The supervisor installed by :func:`use_supervisor`, or ``None``."""
    return _ACTIVE_SUPERVISOR.get()


@dataclass
class CellFailure:
    """One quarantined grid cell: where, how often, and why it failed."""

    index: int
    scenario: Scenario
    attempts: int
    error: str

    def describe(self) -> str:
        tail = self.error.strip().splitlines()
        reason = tail[-1] if tail else "unknown failure"
        return (
            f"cell {self.index} ({self.scenario.describe()}): quarantined "
            f"after {self.attempts} attempts — {reason}"
        )


class CampaignIncompleteError(ExperimentError):
    """A supervised campaign finished with quarantined cells.

    Raised instead of returning a silent partial result: every completed
    cell was already persisted to the attached store, so fixing the
    cause and re-running with resume re-simulates only the quarantined
    remainder.  ``failures`` lists the quarantined cells with their
    tracebacks; ``results`` is the index-aligned partial result list
    (``None`` in quarantined slots); ``report`` carries the manifest's
    status report when a manifest was attached.
    """

    def __init__(
        self,
        failures: List[CellFailure],
        results: List[Optional[RunResult]],
        total: int,
        report: Optional[Dict[str, Any]] = None,
    ):
        self.failures = failures
        self.results = results
        self.report = report
        lines = [
            f"campaign incomplete: {len(failures)} of {total} cells "
            f"quarantined after exhausting retries"
        ]
        lines.extend(f"  {failure.describe()}" for failure in failures)
        lines.append(
            "  completed cells are persisted; re-run with resume to retry "
            "only the quarantined remainder"
        )
        super().__init__("\n".join(lines))


def default_jobs() -> int:
    """Honour ``REPRO_JOBS`` if set, else 1 (serial — always safe)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _execute(scenario: Scenario) -> RunResult:
    """Top-level (picklable) worker body: run one scenario."""
    return scenario.run()


def _supervised_child(conn, scenario: Scenario, attempt: int) -> None:
    """Body of one supervised worker process: run one cell, one attempt.

    Sends ``("ok", RunResult)`` or ``("error", traceback_text)`` back
    over ``conn``.  A hard death (crash injection, SIGKILL, OOM) sends
    nothing — the parent reads EOF and treats it as a crash.
    """
    try:
        _consult_worker_faults(scenario, attempt)
        run = _execute(scenario)
        conn.send(("ok", run))
    except BaseException:  # noqa: BLE001 - full isolation barrier
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _consult_worker_faults(scenario: Scenario, attempt: int) -> None:
    """Chaos hook: let an active fault plan crash/stall this worker.

    The key includes the cell's pairing key *and* the attempt number, so
    "crash on attempt 1, succeed on attempt 2" is a deterministic,
    replayable scenario (see :mod:`repro.service.faults`).
    """
    if not os.environ.get("REPRO_FAULTS"):
        return
    from ..service.faults import active_faults

    faults = active_faults()
    if faults is None:
        return
    from .pairing import scenario_key

    key = "|".join(map(str, scenario_key(scenario))) + f"|attempt={attempt}"
    faults.worker_entry(key)


def _run_supervised(
    scenarios: List[Scenario],
    jobs: int,
    supervise: SupervisorConfig,
    store=None,
    progress: Optional[Callable[[int, int, Scenario], None]] = None,
    experiment: Optional[str] = None,
    manifest=None,
    on_cell_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple[List[Optional[RunResult]], List[CellFailure]]:
    """The fault-tolerant executor: one worker process per cell attempt.

    Unlike the plain process-pool path, every cell gets its own worker
    process, which is what makes the recovery guarantees possible: a
    hung cell can be SIGKILLed without collateral damage, and a crashed
    worker takes down exactly one attempt.  Results are flushed to
    ``store`` (and ``progress``) strictly in grid order as the completed
    prefix grows, so persisted output is byte-identical to serial
    execution; the manifest records ``done`` only after the row is
    flushed, keeping the ledger honest about what the store holds.
    """
    import multiprocessing as mp
    from multiprocessing.connection import wait as conn_wait

    from .pairing import scenario_key

    ctx = mp.get_context()
    total = len(scenarios)
    keys = [scenario_key(sc) for sc in scenarios]
    results: List[Optional[RunResult]] = [None] * total
    settled = [False] * total  # done or quarantined
    attempts = [0] * total
    failures: List[CellFailure] = []
    ready: deque = deque(range(total))
    delayed: List[Tuple[float, int]] = []  # (not_before, index) heap
    active: Dict[Any, Dict[str, Any]] = {}  # recv-conn -> task
    flushed = 0
    workers = max(1, jobs)

    def emit(event: Dict[str, Any]) -> None:
        if on_cell_event is not None:
            on_cell_event(event)

    def flush() -> None:
        """Advance the settled prefix: persist + report in grid order."""
        nonlocal flushed
        while flushed < total and settled[flushed]:
            run = results[flushed]
            if run is not None:
                if experiment is not None:
                    run.experiment = experiment
                if store is not None:
                    store.append(run)
                if manifest is not None:
                    manifest.record_done(keys[flushed])
            if progress is not None:
                progress(flushed, total, scenarios[flushed])
            flushed += 1

    def launch(index: int) -> None:
        attempts[index] += 1
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_supervised_child,
            args=(send_conn, scenarios[index], attempts[index]),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        deadline = (
            time.monotonic() + supervise.cell_timeout_s
            if supervise.cell_timeout_s is not None
            else None
        )
        active[recv_conn] = {"index": index, "proc": proc,
                             "deadline": deadline}

    def settle_ok(index: int, run: RunResult) -> None:
        results[index] = run
        settled[index] = True
        emit({
            "type": "cell",
            "index": index,
            "total": total,
            "source": "sim",
            "attempts": attempts[index],
            "scenario": scenarios[index].describe(),
        })
        flush()

    def settle_fail(index: int, error_text: str, kind: str) -> None:
        if attempts[index] < supervise.max_attempts:
            delay = supervise.backoff_delay(index, attempts[index])
            emit({
                "type": "retry",
                "index": index,
                "total": total,
                "attempt": attempts[index],
                "max_attempts": supervise.max_attempts,
                "delay_s": delay,
                "kind": kind,
            })
            heapq.heappush(delayed, (time.monotonic() + delay, index))
            return
        settled[index] = True
        failures.append(CellFailure(
            index=index,
            scenario=scenarios[index],
            attempts=attempts[index],
            error=error_text,
        ))
        if manifest is not None:
            manifest.record_quarantine(keys[index], error_text)
        emit({
            "type": "quarantine",
            "index": index,
            "total": total,
            "attempts": attempts[index],
            "error": error_text,
        })
        flush()

    while ready or delayed or active:
        now = time.monotonic()
        while delayed and delayed[0][0] <= now:
            _, index = heapq.heappop(delayed)
            ready.append(index)
        while ready and len(active) < workers:
            launch(ready.popleft())
        if not active:
            # Only backoff-delayed cells remain: sleep toward the next.
            if delayed:
                time.sleep(
                    min(0.05, max(0.0, delayed[0][0] - time.monotonic()))
                )
            continue

        waits = []
        deadlines = [
            task["deadline"] for task in active.values()
            if task["deadline"] is not None
        ]
        if deadlines:
            waits.append(min(deadlines) - now)
        if delayed:
            waits.append(delayed[0][0] - now)
        timeout = max(0.0, min(waits)) if waits else None
        fired = conn_wait(list(active), timeout=timeout)

        for conn in fired:
            task = active.pop(conn)
            index, proc = task["index"], task["proc"]
            message = None
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None
            conn.close()
            proc.join()
            if message is not None and message[0] == "ok":
                settle_ok(index, message[1])
            elif message is not None and message[0] == "error":
                settle_fail(index, message[1], "error")
            else:
                settle_fail(
                    index,
                    f"worker process died without a result on attempt "
                    f"{attempts[index]} (exit code {proc.exitcode}) — "
                    f"crash, OOM kill, or SIGKILL",
                    "crash",
                )

        # Watchdog: kill anything past its wall-clock deadline.
        now = time.monotonic()
        for conn, task in list(active.items()):
            if task["deadline"] is not None and now >= task["deadline"]:
                task["proc"].kill()
                task["proc"].join()
                active.pop(conn)
                conn.close()
                settle_fail(
                    task["index"],
                    f"cell exceeded the wall-clock watchdog "
                    f"({supervise.cell_timeout_s:g}s) on attempt "
                    f"{attempts[task['index']]} and was killed",
                    "timeout",
                )

    flush()
    return results, failures


def run_scenarios(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    store=None,
    progress: Optional[Callable[[int, int, Scenario], None]] = None,
    experiment: Optional[str] = None,
    cache=None,
    supervise: Optional[SupervisorConfig] = None,
    manifest=None,
    on_cell_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> List[RunResult]:
    """Execute ``scenarios`` and return their results **in input order**.

    ``jobs <= 1`` runs serially in-process; ``jobs > 1`` fans out over a
    process pool.  Either way the returned list lines up index-for-index
    with the input, and each result is bit-identical across backends
    (determinism is per-scenario, not per-schedule).  ``store`` — any
    object with an ``append(RunResult)`` method, e.g. a
    :class:`~repro.api.store.ResultStore` — receives every result as it is
    collected (in order), so an interrupted campaign keeps the runs that
    finished.

    ``experiment`` stamps every result's :attr:`RunResult.experiment`
    *before* it reaches the store, so persisted rows carry their
    provenance.  ``cache`` overrides the ambient run cache: ``None``
    consults :func:`active_run_cache`, :data:`NO_CACHE` forces plain
    execution, anything else is used as the cache for this call.

    ``supervise`` — a :class:`SupervisorConfig` (``None`` consults
    :func:`active_supervisor`) — switches to the fault-tolerant
    executor: one worker process per cell under a wall-clock watchdog,
    crash/hang retry with capped exponential backoff, and quarantine
    after ``max_attempts`` (raising :class:`CampaignIncompleteError`
    unless ``allow_partial``).  ``manifest`` (a
    :class:`repro.service.manifest.CampaignManifest`) records the
    per-cell ledger; ``on_cell_event`` receives progress/retry/
    quarantine event dicts.  Without a supervisor the executor, results
    and store behaviour are exactly as before.
    """
    scenarios = list(scenarios)
    if cache is None:
        cache = active_run_cache()
    if supervise is None:
        supervise = active_supervisor()
    if cache is not None and cache is not NO_CACHE:
        return cache.execute(
            scenarios, jobs=jobs, store=store, progress=progress,
            experiment=experiment, supervise=supervise,
            manifest=manifest, on_cell_event=on_cell_event,
        )
    if supervise is not None:
        results_s, failures = _run_supervised(
            scenarios, jobs, supervise, store=store, progress=progress,
            experiment=experiment, manifest=manifest,
            on_cell_event=on_cell_event,
        )
        if failures and not supervise.allow_partial:
            raise CampaignIncompleteError(
                failures, results_s, len(scenarios),
                report=manifest.report() if manifest is not None else None,
            )
        return results_s  # type: ignore[return-value]
    results: List[RunResult] = []

    def collect(run: RunResult) -> None:
        if experiment is not None:
            run.experiment = experiment
        results.append(run)
        if store is not None:
            store.append(run)

    if jobs <= 1 or len(scenarios) <= 1:
        for i, sc in enumerate(scenarios):
            if progress is not None:
                progress(i, len(scenarios), sc)
            collect(_execute(sc))
    else:
        workers = min(jobs, len(scenarios))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves input order; chunksize=1 keeps the work
            # queue balanced when run lengths vary wildly (lifetime runs).
            for i, run in enumerate(pool.map(_execute, scenarios, chunksize=1)):
                if progress is not None:
                    progress(i, len(scenarios), scenarios[i])
                collect(run)
    return results


@dataclass
class CampaignResult:
    """An executed campaign: scenarios and their results, index-aligned."""

    scenarios: List[Scenario] = dc_field(default_factory=list)
    runs: List[RunResult] = dc_field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[Tuple[Scenario, RunResult]]:
        return iter(zip(self.scenarios, self.runs))

    def select(self, **tags: Any) -> List[RunResult]:
        """Results whose scenario tags match every given key=value."""
        return [
            run
            for sc, run in zip(self.scenarios, self.runs)
            if all(sc.tags.get(k) == v for k, v in tags.items())
        ]

    def column(self, metric: Callable[[RunResult], Any]) -> List[Any]:
        """Apply ``metric`` to every run, in campaign order."""
        return [metric(run) for run in self.runs]


class Campaign:
    """A scenario grid builder plus its executor front-end.

    Axes added via :meth:`over` multiply: each call refines the grid by
    taking the cross product with the new axis.  Axis names resolve, in
    order, to the builder knobs ``protocol`` / ``load_pps`` / ``seed``, to
    any top-level :class:`NetworkConfig` field, or to a dotted config path
    like ``"mac.max_retries"`` / ``"traffic.buffer_packets"``.
    """

    def __init__(self, base: Optional[Scenario] = None, name: str = "campaign"):
        self.base = base or Scenario()
        self.name = name
        self._axes: List[Tuple[str, List[Any]]] = []
        self._extra: List[Scenario] = []

    # -- grid construction -----------------------------------------------------

    def over(self, **axes: Sequence[Any]) -> "Campaign":
        """Add grid axes; values of each axis must be a non-empty sequence."""
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ExperimentError(f"axis {name!r} needs at least one value")
            self._apply(self.base, name, values[0])  # fail fast on bad names
            self._axes.append((name, values))
        return self

    def seeds(self, seeds: Sequence[int]) -> "Campaign":
        """Replicate the whole grid over these master seeds."""
        return self.over(seed=list(seeds))

    def add(self, scenario: Scenario) -> "Campaign":
        """Append one off-grid scenario to the work list."""
        self._extra.append(scenario)
        return self

    @staticmethod
    def _apply(scenario: Scenario, name: str, value: Any) -> Scenario:
        """Apply one axis setting to a scenario."""
        if name == "protocol":
            return scenario.with_protocol(Protocol(value) if isinstance(value, str) else value)
        if name == "load_pps":
            return scenario.with_load(float(value))
        if name == "seed":
            return scenario.with_seed(int(value))
        if name in _TOP_FIELDS:
            return scenario.with_(**{name: value})
        if "." in name:
            section, _, fld = name.partition(".")
            if section in _SECTIONS:
                return scenario.with_sub(section, **{fld: value})
        raise ExperimentError(
            f"unknown campaign axis {name!r}: expected protocol/load_pps/seed, "
            f"a NetworkConfig field, or a dotted path like 'mac.max_retries'"
        )

    def scenarios(self) -> List[Scenario]:
        """Expand the grid into the ordered, tagged work list."""
        if not self._axes:
            grid = [self.base]
        else:
            names = [n for n, _ in self._axes]
            grid = []
            for combo in itertools.product(*(vals for _, vals in self._axes)):
                sc = self.base
                for name, value in zip(names, combo):
                    sc = self._apply(sc, name, value)
                grid.append(sc.tagged(campaign=self.name,
                                      **dict(zip(names, combo))))
        return grid + list(self._extra)

    def __len__(self) -> int:
        n = 1
        for _, vals in self._axes:
            n *= len(vals)
        return (n if self._axes else 1) + len(self._extra)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        jobs: Optional[int] = None,
        store=None,
        progress: Optional[Callable[[int, int, Scenario], None]] = None,
        cache=None,
        supervise: Optional[SupervisorConfig] = None,
    ) -> CampaignResult:
        """Execute the whole grid and return the index-aligned results.

        ``jobs=None`` falls back to :func:`default_jobs` (the ``REPRO_JOBS``
        environment variable, else serial).  ``cache`` — a
        :class:`repro.service.RunCache` — serves already-stored cells
        from its result database and simulates only the rest (results are
        identical either way; see the cache's ``stats``).  ``supervise``
        — a :class:`SupervisorConfig` — runs the grid under the
        fault-tolerant executor (watchdog, retry, quarantine).
        """
        scenarios = self.scenarios()
        if not scenarios:
            raise ExperimentError("campaign has no scenarios")
        runs = run_scenarios(
            scenarios,
            jobs=default_jobs() if jobs is None else jobs,
            store=store,
            progress=progress,
            cache=cache,
            supervise=supervise,
        )
        return CampaignResult(scenarios=scenarios, runs=runs)
