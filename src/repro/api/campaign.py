"""Campaigns: expand a scenario grid and execute it at any parallelism.

A :class:`Campaign` turns one template :class:`~repro.api.Scenario` plus a
set of axes (protocol × load × seed × any config field) into an ordered
work list, and runs it through a pluggable executor — anything an
:class:`~repro.exec.ExecutorSpec` can name: in-process serial, a
process-pool fan-out, the fault-tolerant supervised executor, or the
multi-host distributed backend.

Because every work item is fully specified by its frozen scenario (all
randomness derives from ``config.seed``), the results are **bit-identical
at any parallelism**: ``executor="pool:4"`` returns exactly what serial
returns, in the same order, only faster — and the distributed executor
returns the same bytes again, whatever set of workers ran the cells.

>>> from repro.api import Campaign, Scenario
>>> from repro.config import Protocol
>>> camp = (Campaign(Scenario.from_preset("smoke"))
...         .over(protocol=[Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE],
...               load_pps=[5.0, 15.0])
...         .seeds([1, 2]))
>>> len(camp)
8
>>> result = camp.run(executor="pool:4")  # doctest: +SKIP

The legacy spellings (``jobs=N``, ``supervise=SupervisorConfig(...)``)
remain first-class: they are mapped onto the equivalent spec by
:meth:`~repro.exec.ExecutorSpec.from_legacy` and are pinned equivalent
by tests.  The execution machinery itself lives in :mod:`repro.exec`;
this module re-exports the historical names (``SupervisorConfig``,
``CellFailure``, ``CampaignIncompleteError``) so existing imports keep
working.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import itertools
import os
from dataclasses import dataclass, field as dc_field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config import NetworkConfig, Protocol
from ..errors import ExperimentError
from ..exec.base import (
    CampaignExecutor,
    CampaignIncompleteError,
    CellFailure,
    ExecutionHooks,
    get_executor,
)
# _execute / _supervised_child / _consult_worker_faults were private
# here before the machinery moved to repro.exec; keep them resolvable.
from ..exec.local import execute_scenario as _execute  # noqa: F401
from ..exec.spec import ExecutorSpec, active_executor, use_executor
from ..exec.supervised import (  # noqa: F401
    SupervisorConfig,
    _supervised_child,
    consult_worker_faults as _consult_worker_faults,
)
from .result import RunResult
from .scenario import Scenario, _SECTIONS

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignIncompleteError",
    "CellFailure",
    "ExecutorSpec",
    "SupervisorConfig",
    "run_scenarios",
    "default_jobs",
    "use_run_cache",
    "active_run_cache",
    "use_supervisor",
    "active_supervisor",
    "use_executor",
    "active_executor",
    "NO_CACHE",
]

_TOP_FIELDS = {f.name for f in dataclasses.fields(NetworkConfig)}

#: Sentinel for ``run_scenarios(cache=NO_CACHE)``: force plain execution
#: even when a cache is active in the calling context (the cache itself
#: uses this to simulate its misses without recursing).
NO_CACHE = object()

#: The ambient run cache (see :func:`use_run_cache`).  A ContextVar so
#: the campaign server's worker threads can each activate their own cache
#: without interfering.
_ACTIVE_CACHE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_run_cache", default=None
)


@contextlib.contextmanager
def use_run_cache(cache):
    """Route every :func:`run_scenarios` call in this context through
    ``cache`` (a :class:`repro.service.RunCache`): cells whose config
    digest already has a stored row are served from the result database,
    only the misses are simulated.  The CLI's ``--cache`` flag and the
    campaign server both wrap execution in this.
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


def active_run_cache():
    """The cache installed by :func:`use_run_cache`, or ``None``."""
    return _ACTIVE_CACHE.get()


#: The ambient supervisor (see :func:`use_supervisor`).
_ACTIVE_SUPERVISOR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_supervisor", default=None
)


@contextlib.contextmanager
def use_supervisor(config: SupervisorConfig):
    """Route every :func:`run_scenarios` call in this context through the
    fault-tolerant supervised executor (watchdog + retry + quarantine).
    The CLI's ``--resume`` / ``--retries`` / ``--cell-timeout`` flags and
    the campaign server install one of these, so registered experiments
    gain crash recovery without signature changes — the same ambient
    pattern as :func:`use_run_cache`.

    Legacy shim: equivalent to ``use_executor(ExecutorSpec.from_legacy(
    supervise=config))`` except that the caller's ``jobs`` argument still
    selects the worker-process concurrency.
    """
    token = _ACTIVE_SUPERVISOR.set(config)
    try:
        yield config
    finally:
        _ACTIVE_SUPERVISOR.reset(token)


def active_supervisor() -> Optional[SupervisorConfig]:
    """The supervisor installed by :func:`use_supervisor`, or ``None``."""
    return _ACTIVE_SUPERVISOR.get()


def default_jobs() -> int:
    """Honour ``REPRO_JOBS`` if set, else 1 (serial — always safe)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def resolve_executor(
    jobs: int = 1,
    supervise: Optional[SupervisorConfig] = None,
    executor=None,
):
    """Pick the executor one :func:`run_scenarios` call should use.

    Precedence, most explicit first: an ``executor`` argument (spec,
    compact string, JSON dict, or live :class:`CampaignExecutor`); an
    explicit ``supervise`` config (the legacy spelling — callers who
    pass it are asking for supervision); the ambient
    :func:`use_executor` context; the ambient :func:`use_supervisor`
    context; finally the ``jobs`` count (``>1`` → process pool, else
    serial).  Returns a spec or a live executor — callers instantiate
    specs via :func:`~repro.exec.base.get_executor` and own the
    resulting instance's lifetime.
    """
    if executor is not None:
        if isinstance(executor, CampaignExecutor):
            return executor
        return ExecutorSpec.normalize(executor)
    if supervise is not None:
        return ExecutorSpec.from_legacy(jobs=jobs, supervise=supervise)
    ambient = active_executor()
    if ambient is not None:
        return ambient
    ambient_sup = active_supervisor()
    if ambient_sup is not None:
        return ExecutorSpec.from_legacy(jobs=jobs, supervise=ambient_sup)
    return ExecutorSpec.from_legacy(jobs=jobs)


def _executor_instance(resolved) -> Tuple[CampaignExecutor, bool]:
    """A live executor for a :func:`resolve_executor` result, plus
    whether this call owns (and must close) it."""
    if isinstance(resolved, CampaignExecutor):
        return resolved, False
    return get_executor(resolved), True


def run_scenarios(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    store=None,
    progress: Optional[Callable[[int, int, Scenario], None]] = None,
    experiment: Optional[str] = None,
    cache=None,
    supervise: Optional[SupervisorConfig] = None,
    manifest=None,
    on_cell_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    executor=None,
) -> List[RunResult]:
    """Execute ``scenarios`` and return their results **in input order**.

    ``executor`` names the execution backend — an
    :class:`~repro.exec.ExecutorSpec`, its compact string form
    (``"pool:4"``, ``"supervised:timeout=30"``,
    ``"distributed:local=2"``), or a live
    :class:`~repro.exec.CampaignExecutor`.  When omitted, the legacy
    arguments pick one: ``supervise`` (a :class:`SupervisorConfig`)
    selects the fault-tolerant executor, otherwise ``jobs <= 1`` runs
    serially in-process and ``jobs > 1`` fans out over a process pool;
    ambient :func:`use_executor` / :func:`use_supervisor` contexts fill
    the same roles (see :func:`resolve_executor` for the precedence).
    Whatever the backend, the returned list lines up index-for-index
    with the input, and each result is bit-identical across backends
    (determinism is per-scenario, not per-schedule).

    ``store`` — any object with an ``append(RunResult)`` method, e.g. a
    :class:`~repro.api.store.ResultStore` — receives every result as it
    is collected (in grid order), so an interrupted campaign keeps the
    runs that finished.  ``experiment`` stamps every result's
    :attr:`RunResult.experiment` *before* it reaches the store, so
    persisted rows carry their provenance.  ``cache`` overrides the
    ambient run cache: ``None`` consults :func:`active_run_cache`,
    :data:`NO_CACHE` forces plain execution, anything else is used as
    the cache for this call.

    ``manifest`` (a :class:`repro.service.manifest.CampaignManifest`)
    records the per-cell ledger; ``on_cell_event`` receives
    progress/retry/quarantine event dicts.  A fault-tolerant backend
    that quarantines cells raises :class:`CampaignIncompleteError`
    (unless its policy says ``allow_partial``); completed cells are
    already persisted by then, so a resumed re-run only simulates the
    quarantined remainder.
    """
    scenarios = list(scenarios)
    if cache is None:
        cache = active_run_cache()
    resolved = resolve_executor(jobs, supervise, executor)
    if cache is not None and cache is not NO_CACHE:
        return cache.execute(
            scenarios, jobs=jobs, store=store, progress=progress,
            experiment=experiment, supervise=supervise,
            manifest=manifest, on_cell_event=on_cell_event,
            executor=resolved,
        )
    instance, owned = _executor_instance(resolved)
    hooks = ExecutionHooks(
        store=store,
        progress=progress,
        experiment=experiment,
        manifest=manifest,
        on_cell_event=on_cell_event,
    )
    try:
        results, failures = instance.execute(scenarios, hooks)
    finally:
        if owned:
            instance.close()
    if failures and not instance.allow_partial:
        raise CampaignIncompleteError(
            failures, results, len(scenarios),
            report=manifest.report() if manifest is not None else None,
        )
    return results  # type: ignore[return-value]


@dataclass
class CampaignResult:
    """An executed campaign: scenarios and their results, index-aligned."""

    scenarios: List[Scenario] = dc_field(default_factory=list)
    runs: List[RunResult] = dc_field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[Tuple[Scenario, RunResult]]:
        return iter(zip(self.scenarios, self.runs))

    def select(self, **tags: Any) -> List[RunResult]:
        """Results whose scenario tags match every given key=value."""
        return [
            run
            for sc, run in zip(self.scenarios, self.runs)
            if all(sc.tags.get(k) == v for k, v in tags.items())
        ]

    def column(self, metric: Callable[[RunResult], Any]) -> List[Any]:
        """Apply ``metric`` to every run, in campaign order."""
        return [metric(run) for run in self.runs]


class Campaign:
    """A scenario grid builder plus its executor front-end.

    Axes added via :meth:`over` multiply: each call refines the grid by
    taking the cross product with the new axis.  Axis names resolve, in
    order, to the builder knobs ``protocol`` / ``load_pps`` / ``seed``, to
    any top-level :class:`NetworkConfig` field, or to a dotted config path
    like ``"mac.max_retries"`` / ``"traffic.buffer_packets"``.
    """

    def __init__(self, base: Optional[Scenario] = None, name: str = "campaign"):
        self.base = base or Scenario()
        self.name = name
        self._axes: List[Tuple[str, List[Any]]] = []
        self._extra: List[Scenario] = []

    # -- grid construction -----------------------------------------------------

    def over(self, **axes: Sequence[Any]) -> "Campaign":
        """Add grid axes; values of each axis must be a non-empty sequence."""
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ExperimentError(f"axis {name!r} needs at least one value")
            self._apply(self.base, name, values[0])  # fail fast on bad names
            self._axes.append((name, values))
        return self

    def seeds(self, seeds: Sequence[int]) -> "Campaign":
        """Replicate the whole grid over these master seeds."""
        return self.over(seed=list(seeds))

    def add(self, scenario: Scenario) -> "Campaign":
        """Append one off-grid scenario to the work list."""
        self._extra.append(scenario)
        return self

    @staticmethod
    def _apply(scenario: Scenario, name: str, value: Any) -> Scenario:
        """Apply one axis setting to a scenario."""
        if name == "protocol":
            return scenario.with_protocol(Protocol(value) if isinstance(value, str) else value)
        if name == "load_pps":
            return scenario.with_load(float(value))
        if name == "seed":
            return scenario.with_seed(int(value))
        if name in _TOP_FIELDS:
            return scenario.with_(**{name: value})
        if "." in name:
            section, _, fld = name.partition(".")
            if section in _SECTIONS:
                return scenario.with_sub(section, **{fld: value})
        raise ExperimentError(
            f"unknown campaign axis {name!r}: expected protocol/load_pps/seed, "
            f"a NetworkConfig field, or a dotted path like 'mac.max_retries'"
        )

    def scenarios(self) -> List[Scenario]:
        """Expand the grid into the ordered, tagged work list."""
        if not self._axes:
            grid = [self.base]
        else:
            names = [n for n, _ in self._axes]
            grid = []
            for combo in itertools.product(*(vals for _, vals in self._axes)):
                sc = self.base
                for name, value in zip(names, combo):
                    sc = self._apply(sc, name, value)
                grid.append(sc.tagged(campaign=self.name,
                                      **dict(zip(names, combo))))
        return grid + list(self._extra)

    def __len__(self) -> int:
        n = 1
        for _, vals in self._axes:
            n *= len(vals)
        return (n if self._axes else 1) + len(self._extra)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        jobs: Optional[int] = None,
        store=None,
        progress: Optional[Callable[[int, int, Scenario], None]] = None,
        cache=None,
        supervise: Optional[SupervisorConfig] = None,
        executor=None,
    ) -> CampaignResult:
        """Execute the whole grid and return the index-aligned results.

        ``executor`` — an :class:`~repro.exec.ExecutorSpec`, its compact
        string form, or a live executor — names the backend outright and
        cannot be combined with the legacy ``jobs``/``supervise``
        arguments it replaces.  Without it, ``jobs=None`` falls back to
        :func:`default_jobs` (the ``REPRO_JOBS`` environment variable,
        else serial) and ``supervise`` — a :class:`SupervisorConfig` —
        runs the grid under the fault-tolerant executor (watchdog,
        retry, quarantine).  ``cache`` — a
        :class:`repro.service.RunCache` — serves already-stored cells
        from its result database and simulates only the rest (results
        are identical either way; see the cache's ``stats``).
        """
        if executor is not None and (jobs is not None or supervise is not None):
            raise ExperimentError(
                "pass either executor= or the legacy jobs=/supervise= "
                "arguments, not both — the executor spec already carries "
                "its own concurrency and fault policy"
            )
        scenarios = self.scenarios()
        if not scenarios:
            raise ExperimentError("campaign has no scenarios")
        runs = run_scenarios(
            scenarios,
            jobs=default_jobs() if jobs is None else jobs,
            store=store,
            progress=progress,
            cache=cache,
            supervise=supervise,
            executor=executor,
        )
        return CampaignResult(scenarios=scenarios, runs=runs)
