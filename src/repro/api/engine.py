"""The simulation engine: one fully specified run in, one record out.

:func:`simulate` is the single choke point every execution path funnels
through — :meth:`repro.api.Scenario.run`, the :class:`repro.api.Campaign`
executors (serial and process-pool), and the legacy
:func:`repro.experiments.run_scenario` shim.  A run is fully specified by
``(NetworkConfig, RunOptions)``; all randomness derives from
``config.seed`` via the named-stream :class:`repro.rng.RngRegistry`, so
the same pair produces a bit-identical :class:`RunResult` in any process,
at any parallelism, in any execution order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import NetworkConfig
from ..errors import ExperimentError
from ..metrics import TimeSeriesCollector
from ..metrics.collectors import validate_max_samples
from ..metrics.lifetime import death_spread_s, first_death_s, network_lifetime_s
from ..network import SensorNetwork
from .result import RunResult

__all__ = ["RunOptions", "simulate"]


@dataclass(frozen=True)
class RunOptions:
    """How to observe a run (as opposed to *what* to run — the config).

    ``stop_when_dead`` ends the run early once the paper's dead-network
    rule triggers (saves wall time in lifetime sweeps).  ``collect_queues``
    stores per-node queue snapshots for the Fig. 12 fairness statistic.
    ``max_series_samples`` bounds every collected time series by halving
    decimation (scale tier: a 5000-node run's per-node queue snapshots
    would otherwise grow without bound); ``None`` keeps exact series.
    ``profile_rounds`` names a JSON path for the vector engine's
    per-round phase timeline (membership assignment, channel advance,
    MAC/uplink mirrors, energy settle — see :mod:`repro.vector.profile`);
    the event kernel has no phase structure and ignores it.  Purely
    observational: results are bit-identical with it on or off.
    """

    horizon_s: float = 60.0
    sample_interval_s: float = 5.0
    stop_when_dead: bool = False
    collect_queues: bool = False
    max_series_samples: Optional[int] = None
    profile_rounds: Optional[str] = None

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ExperimentError("horizon must be > 0")
        if self.sample_interval_s <= 0:
            raise ExperimentError("sample interval must be > 0")
        validate_max_samples(self.max_series_samples)


def simulate(
    cfg: NetworkConfig,
    options: Optional[RunOptions] = None,
    tracer=None,
) -> RunResult:
    """Simulate one scenario and return its :class:`RunResult`.

    Build a :class:`~repro.network.SensorNetwork`, attach samplers,
    advance (optionally stopping at network death), and distil the
    measurement record.
    """
    opts = options or RunOptions()
    if cfg.scale.backend == "auto":
        # Resolve to the concrete engine before anything else: the same
        # pure function to_dict()/digest() use, so the substituted
        # config digests identically and stored rows pair either way.
        from ..vector.support import resolve_backend

        cfg = cfg.with_scale(backend=resolve_backend(cfg))
    if cfg.scale.backend == "vector":
        # Population-scale structure-of-arrays engine; same (config,
        # options) -> RunResult contract, selected per run by config so
        # campaigns can mix backends freely.  Imported lazily to keep
        # the default path free of the numpy-heavy vector module.
        from ..vector import simulate_vector

        return simulate_vector(cfg, opts, tracer=tracer)
    wall_start = time.perf_counter()
    net = SensorNetwork(cfg, tracer=tracer)
    result = RunResult(
        protocol=cfg.protocol.value,
        seed=cfg.seed,
        load_pps=cfg.traffic.packets_per_second,
        horizon_s=opts.horizon_s,
        n_nodes=cfg.n_nodes,
        config_digest=cfg.digest(),
    )

    def sample_energy() -> float:
        return net.mean_remaining_j()

    def sample_alive() -> int:
        return net.alive_count

    cap = opts.max_series_samples
    energy_series = TimeSeriesCollector(
        net.sim, opts.sample_interval_s, sample_energy, "mean_energy",
        max_samples=cap,
    )
    alive_series = TimeSeriesCollector(
        net.sim, opts.sample_interval_s, sample_alive, "alive",
        max_samples=cap,
    )
    queue_series = None
    if opts.collect_queues:
        queue_series = TimeSeriesCollector(
            net.sim, opts.sample_interval_s, net.queue_lengths, "queues",
            max_samples=cap,
        )
    up_series = None
    if cfg.dynamics.enabled:
        # Churn-aware companion to the alive series: alive counts track
        # battery deaths (the paper's series), up counts subtract nodes
        # transiently down at the sample instant.
        up_series = TimeSeriesCollector(
            net.sim, opts.sample_interval_s, lambda: net.up_count, "up",
            max_samples=cap,
        )

    net.start()
    energy_series.start()
    alive_series.start()
    if queue_series is not None:
        queue_series.start()
    if up_series is not None:
        up_series.start()

    # Advance in sampler-sized chunks so the death rule is checked often.
    t = 0.0
    while t < opts.horizon_s:
        t = min(t + opts.sample_interval_s, opts.horizon_s)
        net.run_until(t)
        if opts.stop_when_dead and net.is_dead:
            break

    # Harvest.
    result.sample_times_s = list(energy_series.times)
    result.mean_energy_j = [float(v) for v in energy_series.values]
    result.alive_counts = [int(v) for v in alive_series.values]
    result.series_stride = energy_series.stride
    if queue_series is not None:
        result.queue_snapshots = [list(v) for v in queue_series.values]
    if up_series is not None:
        result.up_counts = [int(v) for v in up_series.values]

    deaths = [n.death_time_s for n in net.nodes]
    result.death_times_s = deaths
    result.lifetime_s = network_lifetime_s(
        deaths, cfg.n_nodes, cfg.dead_fraction
    )
    result.first_death_s = first_death_s(deaths)
    result.death_spread_s = death_spread_s(deaths)

    elapsed = net.sim.now
    result.events_processed = net.sim.events_processed
    result.generated = net.generated_packets()
    result.delivered = net.stats.delivered
    result.delivered_local = net.stats.delivered_local
    result.lost_channel = net.stats.lost_channel
    result.dropped_overflow = net.dropped_overflow()
    result.dropped_retry = net.dropped_retry()
    result.collisions = sum(n.mac.stats.collisions_heard for n in net.nodes)
    result.total_consumed_j = net.total_consumed_j()
    if result.delivered > 0:
        # Radio deliveries only — see RunResult's "Delivery accounting".
        result.energy_per_packet_j = result.total_consumed_j / result.delivered
    result.mean_delay_s = net.stats.mean_delay_s()
    if net.stats.delays_s:
        p50, p90, p99 = np.percentile(net.stats.delays_s, (50.0, 90.0, 99.0))
        result.delay_p50_s = float(p50)
        result.delay_p90_s = float(p90)
        result.delay_p99_s = float(p99)
    if elapsed > 0:
        result.throughput_bps = net.stats.delivered_bits / elapsed
    if result.generated > 0:
        # Radio + local deliveries — see RunResult's "Delivery accounting".
        result.delivery_rate = net.stats.total_delivered / result.generated
    result.energy_breakdown = net.energy_breakdown()
    # Uplink tier counters (identically zero while routing is disabled).
    result.cluster_delivered = net.stats.cluster_delivered
    result.uplink_lost_channel = net.stats.uplink_lost_channel
    result.uplink_dropped_retry = net.stats.uplink_dropped_retry
    result.uplink_dropped_overflow = net.stats.uplink_dropped_overflow
    result.uplink_stranded = net.stats.uplink_stranded
    result.mean_hop_count = net.stats.mean_hop_count()
    result.uplink_energy_j = (
        result.energy_breakdown.get("uplink_tx", 0.0)
        + result.energy_breakdown.get("uplink_rx", 0.0)
    )
    # Dynamics.  Counters are identically zero while the block is off;
    # the two churn-aware derived metrics below are always computed and
    # equal their static counterparts on a churn-free run.
    result.churn_failures = net.stats.churn_failures
    result.churn_recoveries = net.stats.churn_recoveries
    result.regime_shifts = net.stats.regime_shifts
    result.orphaned = net.stats.orphaned
    result.first_failure_s = net.stats.first_failure_s
    result.lifetime_effective_s = result.lifetime_s
    offered = result.generated - result.orphaned
    if offered > 0:
        result.delivery_rate_offered = net.stats.total_delivered / offered
    if cfg.dynamics.enabled:
        # A node down at the end (failed, never recovered) is dead for
        # the churn-aware lifetime, from its last failure onward.
        effective_deaths = [
            n.death_time_s
            if n.death_time_s is not None
            else (n.last_failure_s if n.failed else None)
            for n in net.nodes
        ]
        result.lifetime_effective_s = network_lifetime_s(
            effective_deaths, cfg.n_nodes, cfg.dead_fraction
        )
        bysrc = net.stats.delivered_bits_by_source
        if bysrc and elapsed > 0:
            survivor_bits = sum(
                bits for nid, bits in bysrc.items() if net.nodes[nid].is_up
            )
            result.survivor_throughput_bps = survivor_bits / elapsed
    result.wall_time_s = time.perf_counter() - wall_start
    return result
