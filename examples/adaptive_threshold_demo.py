#!/usr/bin/env python3
"""Scheme 1 controller demo: watch the Fig. 6 pseudo-code act.

Drives a single AdaptiveThresholdPolicy with a synthetic arrival pattern
(a burst of traffic, then a lull) and prints every threshold move the
controller makes — the queue grows, the threshold walks down one class at
a time; the queue drains, the threshold snaps back to 2 Mbps.

Run:  python examples/adaptive_threshold_demo.py
"""

from repro.config import PhyConfig, PolicyConfig
from repro.phy import AbicmTable
from repro.policy import AdaptiveThresholdPolicy, ThresholdLadder


def main() -> None:
    ladder = ThresholdLadder(AbicmTable.from_config(PhyConfig()))
    moves = []
    policy = AdaptiveThresholdPolicy(
        ladder,
        PolicyConfig(),  # M = 5 arrivals/sample, arm at queue >= 15
        on_change=lambda now, old, new: moves.append((now, old, new)),
    )

    print("threshold ladder:")
    for k in range(ladder.n_classes):
        print(f"  class {k}: >= {ladder.snr_db(k):5.1f} dB "
              f"(mode {k + 1}, {ladder.rate_bps(k) / 1e3:.0f} kbps)")
    print(f"\ninitial class: {policy.threshold_class()} (highest, 2 Mbps)\n")

    # Phase 1: traffic burst -- queue climbs 2 packets per arrival epoch.
    print("phase 1: burst (queue grows by ~2/arrival)")
    queue = 0
    t = 0.0
    for i in range(40):
        queue += 2
        t += 0.05
        policy.observe_arrival(queue, t)
    print(f"  after {queue} queued: class={policy.threshold_class()} "
          f"armed={policy.is_armed} lowers={policy.lowers}")

    # Phase 2: lull -- queue drains.
    print("phase 2: lull (queue drains)")
    for i in range(30):
        queue = max(0, queue - 4)
        t += 0.05
        policy.observe_arrival(queue, t)
    print(f"  after drain: class={policy.threshold_class()} "
          f"armed={policy.is_armed} raises={policy.raises}")

    print("\nevery threshold move (time, old class -> new class):")
    for now, old, new in moves:
        direction = "LOWER" if new < old else "RAISE"
        print(f"  t={now:5.2f}s  {old} -> {new}  [{direction}]"
              f"  gate now {ladder.snr_db(new):.1f} dB")

    print("\nreading: ΔV >= 0 (growing queue) relaxes the gate one class per"
          "\nsample; ΔV < 0 (draining) snaps straight back to the 2 Mbps gate.")


if __name__ == "__main__":
    main()
