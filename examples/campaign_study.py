#!/usr/bin/env python3
"""Campaign study: a protocol × load × seed grid through `repro.api`.

The full new-API workflow in one script:

1. build a template :class:`~repro.api.Scenario` from a preset;
2. expand it into a :class:`~repro.api.Campaign` grid (3 protocols ×
   3 loads × 2 seeds = 18 runs);
3. execute with ``--jobs N`` process parallelism (results bit-identical
   to serial) while streaming every raw run into a
   :class:`~repro.api.ResultStore`;
4. aggregate with :meth:`CampaignResult.select` and re-load the store to
   show that nothing needs re-simulating.

Run:  python examples/campaign_study.py [--jobs 4] [--store runs.jsonl]
"""

import argparse

from repro.api import Campaign, ResultStore, Scenario
from repro.config import Protocol
from repro.experiments import render_table
from repro.metrics.summary import summarize

LOADS = (5.0, 15.0, 25.0)
SEEDS = (1, 2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="smoke",
                        choices=("smoke", "quick", "full"))
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--store", default=None,
                        help="also persist raw runs to this .jsonl/.csv path")
    args = parser.parse_args()

    base = Scenario.from_preset(args.preset)
    campaign = (
        Campaign(base, name="load-grid")
        .over(protocol=list(Protocol), load_pps=list(LOADS))
        .seeds(SEEDS)
    )
    print(f"executing {len(campaign)} scenarios (jobs={args.jobs}) ...")
    store = ResultStore(args.store) if args.store else None
    result = campaign.run(jobs=args.jobs, store=store)

    rows = []
    for load in LOADS:
        row = [load]
        for proto in Protocol:
            runs = result.select(protocol=proto, load_pps=load)
            row.append(summarize(
                [r.delivery_rate for r in runs if r.delivery_rate is not None]
            ).mean)
        rows.append(row)
    print(render_table(
        ["load_pps"] + [p.value for p in Protocol],
        rows,
        title=f"delivery rate vs load ({args.preset} preset, "
              f"{len(SEEDS)} seeds)",
    ))

    if store is not None:
        reloaded = ResultStore(args.store).load()
        print(f"store round-trip: {len(reloaded)} runs reloaded from "
              f"{args.store} — re-render any table without re-simulating.")


if __name__ == "__main__":
    main()
