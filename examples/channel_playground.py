#!/usr/bin/env python3
"""Channel playground: see the time-varying channel CAEM exploits.

Samples one sensor→cluster-head link over a minute of simulated time and
prints (a) an ASCII trace of the SNR with the four ABICM mode bands, and
(b) the occupancy of each mode — the statistical raw material behind the
paper's energy savings (packets sent in mode 4 cost 1 ms of airtime;
mode 1 costs 8 ms).

Run:  python examples/channel_playground.py [--distance M]
"""

import argparse

import numpy as np

from repro.channel import Link, LinkBudget
from repro.config import ChannelConfig, PhyConfig
from repro.phy import AbicmTable
from repro.rng import RngRegistry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=float, default=35.0,
                        help="sensor to cluster-head distance, metres")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    ch_cfg = ChannelConfig()
    link = Link(
        args.distance,
        LinkBudget.from_config(ch_cfg),
        ch_cfg,
        RngRegistry(args.seed).stream("playground"),
        name="demo",
    )
    table = AbicmTable.from_config(PhyConfig())

    times = np.arange(0.0, 60.0, 0.05)  # one tone-period cadence
    snrs = np.array([link.snr_db(t) for t in times])

    print(f"link: d={args.distance} m, mean SNR {link.mean_snr_db:.1f} dB")
    print(f"mode thresholds: "
          + ", ".join(f"mode{m.index}>={m.threshold_db:.1f}dB" for m in table))

    # ASCII strip chart (1 row per 2 seconds).
    lo, hi = snrs.min(), snrs.max()
    print(f"\nSNR trace ({lo:.0f} .. {hi:.0f} dB, '*' = sample, '|' = mode-4 gate):")
    gate = table.highest.threshold_db
    width = 64
    for chunk_start in range(0, len(times), 40):
        chunk = snrs[chunk_start:chunk_start + 40]
        mean_snr = chunk.mean()
        col = int((mean_snr - lo) / max(hi - lo, 1e-9) * (width - 1))
        gate_col = int((gate - lo) / max(hi - lo, 1e-9) * (width - 1))
        row = [" "] * width
        if 0 <= gate_col < width:
            row[gate_col] = "|"
        row[max(0, min(col, width - 1))] = "*"
        print(f"t={times[chunk_start]:5.1f}s {''.join(row)} {mean_snr:6.1f} dB")

    # Mode occupancy.
    counts = {f"mode {m.index} ({m.throughput_bps/1e3:.0f} kbps)": 0 for m in table}
    outage = 0
    for s in snrs:
        mode = table.mode_for_snr(float(s))
        if mode is None:
            outage += 1
        else:
            counts[f"mode {mode.index} ({mode.throughput_bps/1e3:.0f} kbps)"] += 1
    n = len(snrs)
    print("\nmode occupancy (fraction of samples):")
    for label, c in counts.items():
        bar = "#" * int(40 * c / n)
        print(f"  {label:<22s} {c / n:6.1%} {bar}")
    print(f"  {'outage':<22s} {outage / n:6.1%}")

    mean_airtime = np.mean([
        (table.mode_for_snr(float(s)) or table.lowest).airtime_s(2000)
        for s in snrs
    ])
    print(f"\nmean airtime per 2-kbit packet if sent blindly : "
          f"{mean_airtime * 1e3:.2f} ms")
    print(f"airtime if sent only in mode 4 (CAEM's gate)   : "
          f"{table.highest.airtime_s(2000) * 1e3:.2f} ms")
    print(f"=> naive-vs-gated energy ratio ~ {mean_airtime / table.highest.airtime_s(2000):.2f}x")


if __name__ == "__main__":
    main()
