#!/usr/bin/env python3
"""Quickstart: run a small CAEM network and print what happened.

Builds a 20-node network running Scheme 1 (CAEM with adaptive threshold
adjustment), simulates one minute of operation, and reports delivery,
energy, and protocol-behaviour statistics.

Run:  python examples/quickstart.py
"""

from repro import NetworkConfig, Protocol, SensorNetwork

def main() -> None:
    cfg = NetworkConfig(
        n_nodes=20,
        protocol=Protocol.CAEM_ADAPTIVE,  # the paper's Scheme 1
        seed=42,
    ).with_traffic(packets_per_second=5.0)

    net = SensorNetwork(cfg)
    print(f"running {cfg.n_nodes} nodes for 60 s of simulated time ...")
    net.run_until(60.0)

    stats = net.stats
    print(f"\n--- traffic ---")
    print(f"generated            : {net.generated_packets()} packets")
    print(f"delivered over radio : {stats.delivered}")
    print(f"aggregated locally   : {stats.delivered_local} (cluster heads' own data)")
    print(f"lost to channel      : {stats.lost_channel}")
    print(f"overflow drops       : {net.dropped_overflow()}")
    print(f"mean delay           : {stats.mean_delay_s() * 1e3:.1f} ms")

    print(f"\n--- energy ---")
    print(f"mean remaining       : {net.mean_remaining_j():.3f} J of "
          f"{cfg.energy.initial_energy_j} J")
    print(f"per delivered packet : "
          f"{net.total_consumed_j() / stats.delivered * 1e3:.2f} mJ")
    print("breakdown            :")
    for cause, joules in sorted(net.energy_breakdown().items(),
                                key=lambda kv: -kv[1]):
        print(f"  {cause:<10s} {joules:8.3f} J")

    print(f"\n--- protocol ---")
    lowers = sum(getattr(n.mac.policy, "lowers", 0) for n in net.nodes)
    raises = sum(getattr(n.mac.policy, "raises", 0) for n in net.nodes)
    print(f"threshold lowered {lowers}x, raised {raises}x across the network")
    print(f"LEACH rounds run     : {net.round_index}")
    print(f"collisions heard     : "
          f"{sum(n.mac.stats.collisions_heard for n in net.nodes)}")


if __name__ == "__main__":
    main()
