#!/usr/bin/env python3
"""Protocol comparison: the paper's three protocols head-to-head.

Runs pure LEACH, Scheme 1 (adaptive threshold) and Scheme 2 (fixed
threshold) on identical topology/traffic/channel seeds and prints a
side-by-side comparison — a miniature of the paper's whole evaluation.

Run:  python examples/protocol_comparison.py [--nodes N] [--horizon S]
"""

import argparse

from repro import NetworkConfig, Protocol, SensorNetwork
from repro.experiments import render_table


def run_one(protocol: Protocol, n_nodes: int, horizon_s: float, seed: int):
    cfg = NetworkConfig(n_nodes=n_nodes, protocol=protocol, seed=seed)
    net = SensorNetwork(cfg)
    net.run_until(horizon_s)
    consumed = net.total_consumed_j()
    delivered = net.stats.delivered
    return [
        protocol.label,
        net.generated_packets(),
        delivered,
        f"{net.stats.delivery_rate():.1%}" if hasattr(net.stats, "delivery_rate")
        else f"{net.stats.total_delivered / max(net.generated_packets(), 1):.1%}",
        round(consumed, 2),
        round(consumed / max(delivered, 1) * 1e3, 2),
        round(net.stats.mean_delay_s() * 1e3, 1),
        net.dropped_overflow(),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--horizon", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rows = [
        run_one(p, args.nodes, args.horizon, args.seed)
        for p in (Protocol.PURE_LEACH, Protocol.CAEM_ADAPTIVE, Protocol.CAEM_FIXED)
    ]
    print(render_table(
        ["protocol", "generated", "delivered", "delivery", "energy J",
         "mJ/packet", "delay ms", "overflow"],
        rows,
        title=f"{args.nodes} nodes, {args.horizon:.0f} s, load 5 pkt/s",
    ))
    print("expected shape (paper): energy LEACH > S1 > S2;")
    print("delay/overflow S2 worst; S1 balances both.")


if __name__ == "__main__":
    main()
