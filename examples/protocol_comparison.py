#!/usr/bin/env python3
"""Protocol comparison: the paper's three protocols head-to-head.

Runs pure LEACH, Scheme 1 (adaptive threshold) and Scheme 2 (fixed
threshold) on identical topology/traffic/channel seeds — a miniature of
the paper's whole evaluation — expressed as a one-axis
:class:`repro.api.Campaign`.  Pass ``--jobs 3`` to run the three
protocols in parallel processes; the table is identical either way.

Run:  python examples/protocol_comparison.py [--nodes N] [--horizon S] [--jobs N]
"""

import argparse

from repro.api import Campaign, Scenario
from repro.config import Protocol
from repro.experiments import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--horizon", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    base = (
        Scenario()
        .with_(n_nodes=args.nodes, seed=args.seed)
        .with_runtime(horizon_s=args.horizon, sample_interval_s=5.0)
    )
    campaign = Campaign(base, name="protocol-comparison").over(
        protocol=list(Protocol)
    )
    result = campaign.run(jobs=args.jobs)

    rows = []
    for scenario, run in result:
        rows.append([
            scenario.config.protocol.label,
            run.generated,
            run.delivered,
            f"{run.delivery_rate:.1%}" if run.delivery_rate is not None else "—",
            round(run.total_consumed_j, 2),
            round(run.energy_per_packet_j * 1e3, 2)
            if run.energy_per_packet_j is not None else None,
            round(run.mean_delay_s * 1e3, 1),
            run.dropped_overflow,
        ])
    print(render_table(
        ["protocol", "generated", "delivered", "delivery", "energy J",
         "mJ/packet", "delay ms", "overflow"],
        rows,
        title=f"{args.nodes} nodes, {args.horizon:.0f} s, load 5 pkt/s",
    ))
    print("expected shape (paper): energy LEACH > S1 > S2;")
    print("delay/overflow S2 worst; S1 balances both.")


if __name__ == "__main__":
    main()
