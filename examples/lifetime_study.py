#!/usr/bin/env python3
"""Lifetime study: a miniature of the paper's Figures 8–10.

Runs the three protocols to network death on a scaled-down deployment and
prints the remaining-energy trajectory, the die-off curve, and the
lifetime gains over pure LEACH (paper: ≈ +40% for Scheme 1, ≈ +130% for
Scheme 2 at 5 pkt/s).

Run:  python examples/lifetime_study.py [--preset quick|smoke]
"""

import argparse

from repro.experiments import fig8_remaining_energy, fig9_nodes_alive


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="smoke",
                        choices=("smoke", "quick", "full"))
    parser.add_argument("--seeds", type=int, nargs="+", default=[1])
    args = parser.parse_args()

    print("— energy trajectory (Fig. 8) —")
    fig8 = fig8_remaining_energy(args.preset, args.seeds)
    # Print a decimated view: every 4th row.
    fig8.rows = fig8.rows[::4]
    print(fig8.render())

    print("— die-off and lifetime (Fig. 9) —")
    fig9 = fig9_nodes_alive(args.preset, args.seeds)
    fig9.rows = fig9.rows[::4]
    print(fig9.render())


if __name__ == "__main__":
    main()
