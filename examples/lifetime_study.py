#!/usr/bin/env python3
"""Lifetime study: a miniature of the paper's Figures 8–10.

Runs the three protocols to network death on a scaled-down deployment and
prints the remaining-energy trajectory, the die-off curve, and the
lifetime gains over pure LEACH (paper: ≈ +40% for Scheme 1, ≈ +130% for
Scheme 2 at 5 pkt/s).

Experiments are resolved through the :mod:`repro.api` registry — the
same lookup `repro-caem run` uses — and accept ``--jobs`` for
process-parallel execution.

Run:  python examples/lifetime_study.py [--preset quick|smoke] [--jobs N]
"""

import argparse

from repro.api import get_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="smoke",
                        choices=("smoke", "quick", "full"))
    parser.add_argument("--seeds", type=int, nargs="+", default=[1])
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    print("— energy trajectory (Fig. 8) —")
    fig8 = get_experiment("fig8").run(
        preset=args.preset, seeds=tuple(args.seeds), jobs=args.jobs
    )
    # Print a decimated view: every 4th row.
    fig8.rows = fig8.rows[::4]
    print(fig8.render())

    print("— die-off and lifetime (Fig. 9) —")
    fig9 = get_experiment("fig9").run(
        preset=args.preset, seeds=tuple(args.seeds), jobs=args.jobs
    )
    fig9.rows = fig9.rows[::4]
    print(fig9.render())


if __name__ == "__main__":
    main()
