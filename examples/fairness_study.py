#!/usr/bin/env python3
"""Fairness study: why Scheme 2 starves far-away sensors (Fig. 12).

Runs Scheme 1 and Scheme 2 with effectively unbounded buffers, then shows
per-node queue lengths against each node's distance to its current
cluster head.  Scheme 2's fixed 2 Mbps gate leaves distant (low mean SNR)
nodes waiting for fades that rarely come; Scheme 1's controller lets a
growing queue buy a lower gate.

Run:  python examples/fairness_study.py
"""


from repro import NetworkConfig, Protocol, SensorNetwork
from repro.metrics import jain_index, queue_length_std


def run(protocol: Protocol, seed: int = 11):
    cfg = NetworkConfig(
        n_nodes=24, protocol=protocol, seed=seed
    ).with_traffic(packets_per_second=10.0, buffer_packets=1_000_000)
    net = SensorNetwork(cfg)
    net.run_until(45.0)
    return net


def report(net: SensorNetwork) -> None:
    rows = []
    for node in net.nodes:
        if node.mac.link is not None:
            rows.append((node.id, node.mac.link.distance_m, len(node.buffer)))
    rows.sort(key=lambda r: r[1])
    print("  node  dist(m)  queue")
    for nid, d, q in rows:
        bar = "#" * min(q // 2, 50)
        print(f"  {nid:4d}  {d:6.1f}  {q:5d} {bar}")
    queues = [len(n.buffer) for n in net.nodes if n.alive]
    served = [n.mac.stats.packets_sent for n in net.nodes]
    print(f"  σ(queue) = {queue_length_std(queues):.2f}   "
          f"Jain(service) = {jain_index(served):.3f}")


def main() -> None:
    for proto in (Protocol.CAEM_FIXED, Protocol.CAEM_ADAPTIVE):
        print(f"\n=== {proto.label} ===")
        report(run(proto))
    print(
        "\nreading: under Scheme 2 the queue column correlates with distance"
        "\n(starved far nodes); Scheme 1 flattens it by lowering the gate"
        "\nwhere queues build — the paper's short-term fairness result."
    )


if __name__ == "__main__":
    main()
